/**
 * @file
 * Storage containers for MVQ-compressed layers and models. The on-"disk"
 * format follows the paper's Section 5 accounting: per layer a list of
 * assignments (ceil(log2 k) bits each), per-M-group mask codes
 * (ceil(log2 C(M,N)) bits each), and one codebook (k * d * q_c bits),
 * possibly shared across layers (cross-layer clustering).
 *
 * Vanilla (unmasked) VQ is represented with the degenerate pattern 1:1,
 * whose mask costs zero bits and keeps every weight — so every ablation
 * case of the paper (Fig. 12) shares this container and its accounting.
 */

#ifndef MVQ_CORE_COMPRESSED_LAYER_HPP
#define MVQ_CORE_COMPRESSED_LAYER_HPP

#include <string>
#include <vector>

#include "core/codebook.hpp"
#include "core/grouping.hpp"
#include "core/mask_codec.hpp"
#include "core/masked_kmeans.hpp"
#include "core/nm_pruning.hpp"
#include "tensor/ops.hpp"

namespace mvq::nn {
class Layer;
} // namespace mvq::nn

namespace mvq::core {

/** Per-layer compression settings. */
struct MvqLayerConfig
{
    std::int64_t k = 512;   //!< codewords
    std::int64_t d = 16;    //!< subvector length
    NmPattern pattern{4, 16};
    Grouping grouping = Grouping::OutputChannelWise;
    int codebook_bits = 8;  //!< 0 disables codebook quantization
};

/** Bit-level storage accounting (inputs to Eq. 7). */
struct StorageCost
{
    std::int64_t weight_count = 0;   //!< N_G * d
    std::int64_t assignment_bits = 0; //!< b_a
    std::int64_t mask_bits = 0;       //!< b_m
    std::int64_t codebook_bits = 0;   //!< b_c

    std::int64_t
    totalBits() const
    {
        return assignment_bits + mask_bits + codebook_bits;
    }

    double
    bitsPerWeight() const
    {
        return weight_count
            ? static_cast<double>(totalBits())
                / static_cast<double>(weight_count)
            : 0.0;
    }

    /** Eq. 7 with b_f full-precision bits per weight (32 for fp32). */
    double
    compressionRatio(int bf = 32) const
    {
        return totalBits()
            ? static_cast<double>(weight_count) * bf
                / static_cast<double>(totalBits())
            : 0.0;
    }

    StorageCost &operator+=(const StorageCost &other);
};

/** One compressed convolution kernel. */
struct CompressedLayer
{
    std::string name;       //!< matches the Conv2d layer name
    Shape weight_shape;     //!< original [K, C, R, S]
    MvqLayerConfig cfg;
    int codebook_id = 0;    //!< index into CompressedModel::codebooks
    std::vector<std::int32_t> assignments;  //!< N_G entries
    std::vector<std::uint32_t> mask_codes;  //!< N_G * d/M group codes
    std::int64_t dense_flops = 0; //!< MACs of the dense layer (for reports)

    std::int64_t ng() const
    {
        return static_cast<std::int64_t>(assignments.size());
    }

    /** Expand the stored mask codes into an N_G*d bitmask. */
    Mask decodeMask() const;

    /** Sparse-reconstruct the 4-D kernel: codeword o mask per subvector. */
    Tensor reconstruct(const Codebook &cb) const;

    /**
     * Decode straight into the sparse gemm operand: a per-row
     * compressed-column (CSR) view of the unrolled [K, C*R*S] weight
     * matrix holding only the positions the stored mask codes keep, with
     * codeword values filled in from `cb`. The N:M structure makes those
     * positions statically known per M-group, so this is built once at
     * load time and reused for every forward pass (see
     * nn::CompressedConv2d) — inference never touches pruned positions,
     * realizing the N/M flop reduction the accelerator sim models.
     */
    SparseRowMatrix packSparseRows(const Codebook &cb) const;

    /**
     * packSparseRows split per convolution group and bucketed for the
     * multi-row sparse kernel: each group's row range [grp*K/groups,
     * (grp+1)*K/groups) of the unrolled weight matrix packs directly into
     * its own GroupedSparseMatrix (no full-operand pack + slice copy),
     * with rows sharing a kept-column pattern tiled together
     * (groupSparseRows; block size follows the layer's M so buckets align
     * with mask-code granularity). Built once at load time — the bucket
     * structure is a property of the stored mask codes, not of any input.
     */
    std::vector<GroupedSparseMatrix>
    packGroupedRows(const Codebook &cb, std::int64_t groups = 1) const;

    /** Dense-reconstruct (mask ignored; ablation cases A/B). */
    Tensor reconstructDense(const Codebook &cb) const;

    /** Storage cost of assignments + masks (codebook counted separately). */
    StorageCost assignmentStorage() const;

    /** FLOPs after pruning: dense * N / M. */
    std::int64_t
    sparseFlops() const
    {
        return dense_flops * cfg.pattern.n / cfg.pattern.m;
    }
};

/** A fully compressed model: layers plus one or more codebooks. */
struct CompressedModel
{
    std::vector<CompressedLayer> layers;
    std::vector<Codebook> codebooks;
    /**
     * When the reconstruction is dense (ablation cases A/B), masks are not
     * stored and not applied; reconstruct() then ignores them and
     * storage() omits b_m.
     */
    bool dense_reconstruct = false;

    /** Total storage including each codebook once. */
    StorageCost storage() const;

    /** Eq. 7 over the whole model. */
    double
    compressionRatio(int bf = 32) const
    {
        return storage().compressionRatio(bf);
    }

    /** Reconstruct layer i with its codebook. */
    Tensor reconstructLayer(std::size_t i) const;

    /**
     * Write reconstructed kernels into the matching Conv2d layers of a
     * model (matched by layer name; fatal when a name is missing).
     */
    void applyTo(nn::Layer &model) const;

    /** Sum of sparse FLOPs over compressed layers. */
    std::int64_t compressedFlops() const;

    /** Sum of dense FLOPs over compressed layers. */
    std::int64_t denseFlops() const;
};

/**
 * Build a compressed layer from a clustering result.
 *
 * @param name     Conv layer name.
 * @param w4_shape Original kernel shape.
 * @param cfg      Compression settings (k, d, pattern, grouping).
 * @param mask     N_G*d bitmask (from nmMask); pattern 1:1 accepted.
 * @param result   Codebook + assignments from (masked) k-means.
 * @param codebook_id Index of the codebook in the owning model.
 */
CompressedLayer makeCompressedLayer(const std::string &name,
                                    const Shape &w4_shape,
                                    const MvqLayerConfig &cfg,
                                    const Mask &mask,
                                    const KmeansResult &result,
                                    int codebook_id);

} // namespace mvq::core

#endif // MVQ_CORE_COMPRESSED_LAYER_HPP
