/**
 * @file
 * Sparse training for the pruning step of the pipeline (paper Section 4.3
 * and 6.2): SR-STE training for classification models and one-shot ASP
 * pruning with mask-preserving fine-tuning for detection/segmentation,
 * where the paper found SR-STE unstable.
 */

#ifndef MVQ_CORE_SPARSE_TRAIN_HPP
#define MVQ_CORE_SPARSE_TRAIN_HPP

#include <functional>

#include "core/grouping.hpp"
#include "core/nm_pruning.hpp"
#include "nn/conv2d.hpp"
#include "nn/dataset.hpp"
#include "nn/trainer.hpp"

namespace mvq::core {

/** Options for SR-STE sparse training. */
struct SrSteConfig
{
    NmPattern pattern{4, 16};
    std::int64_t d = 16;
    Grouping grouping = Grouping::OutputChannelWise;
    float decay = 2e-4f; //!< SR-STE regularization on pruned weights
    nn::TrainConfig train;
};

/**
 * SR-STE sparse training on a classifier. The targeted conv layers keep a
 * dense shadow copy; every step recomputes the N:M mask from the shadow,
 * runs forward/backward with masked weights, and updates the shadow with
 * the straight-through gradient plus the decay term on pruned weights.
 *
 * On return the targeted layers hold their final masked (sparse) weights.
 *
 * @param targets Conv layers to sparsify (others train normally).
 * @return Final test accuracy of the sparse model.
 */
double srSteTrain(nn::Layer &model, std::vector<nn::Conv2d *> targets,
                  const nn::ClassificationDataset &data,
                  const SrSteConfig &cfg);

/**
 * One-shot magnitude (ASP-style) pruning: compute the N:M mask of each
 * target's current weights and zero the pruned elements in place.
 *
 * @return Per-target masks over the grouped matrices, in target order.
 */
std::vector<Mask> oneShotPrune(const std::vector<nn::Conv2d *> &targets,
                               const NmPattern &pattern, std::int64_t d,
                               Grouping grouping);

/**
 * Build an after-step hook that re-applies fixed masks to the targets,
 * keeping pruned weights at zero during fine-tuning. Suitable for
 * nn::TrainConfig::after_step.
 */
std::function<void(nn::Layer &)> maskReapplyHook(
    std::vector<nn::Conv2d *> targets, std::vector<Mask> masks,
    std::int64_t d, Grouping grouping);

/** Current grouped mask of a layer's weights (zeros = pruned). */
Mask currentMask(const nn::Conv2d &conv, std::int64_t d, Grouping grouping);

} // namespace mvq::core

#endif // MVQ_CORE_SPARSE_TRAIN_HPP
