#include "core/nm_pruning.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace mvq::core {

Mask
nmMask(const Tensor &wr, const NmPattern &pattern)
{
    fatalIf(wr.rank() != 2, "nmMask expects a grouped [NG, d] matrix");
    const std::int64_t ng = wr.dim(0);
    const std::int64_t d = wr.dim(1);
    fatalIf(pattern.m <= 0 || pattern.n <= 0 || pattern.n > pattern.m,
            "bad N:M pattern ", pattern.n, ":", pattern.m);
    fatalIf(d % pattern.m != 0, "subvector length ", d,
            " not a multiple of M = ", pattern.m);

    Mask mask(static_cast<std::size_t>(ng * d), 0);
    std::vector<int> order(static_cast<std::size_t>(pattern.m));

    for (std::int64_t row = 0; row < ng; ++row) {
        for (std::int64_t g0 = 0; g0 < d; g0 += pattern.m) {
            std::iota(order.begin(), order.end(), 0);
            const float *base = wr.data() + row * d + g0;
            std::stable_sort(order.begin(), order.end(),
                [base](int a, int b) {
                    return std::fabs(base[a]) > std::fabs(base[b]);
                });
            for (int i = 0; i < pattern.n; ++i) {
                mask[static_cast<std::size_t>(
                    row * d + g0 + order[static_cast<std::size_t>(i)])] = 1;
            }
        }
    }
    return mask;
}

void
applyMask(Tensor &wr, const Mask &mask)
{
    fatalIf(static_cast<std::int64_t>(mask.size()) != wr.numel(),
            "mask size mismatch");
    for (std::int64_t i = 0; i < wr.numel(); ++i) {
        if (!mask[static_cast<std::size_t>(i)])
            wr[i] = 0.0f;
    }
}

double
maskSparsity(const Mask &mask)
{
    if (mask.empty())
        return 0.0;
    std::size_t zeros = 0;
    for (auto b : mask) {
        if (!b)
            ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(mask.size());
}

Tensor
randomNmMatrix(Rng &rng, std::int64_t rows, std::int64_t cols,
               const NmPattern &pattern)
{
    fatalIf(cols % pattern.m != 0,
            "randomNmMatrix: cols not a multiple of M");
    Tensor a(Shape({rows, cols}));
    a.fillNormal(rng, 0.0f, 1.0f);
    Tensor grouped =
        a.reshaped(Shape({rows * cols / pattern.m, pattern.m}));
    const Mask mask = nmMask(grouped, pattern);
    applyMask(grouped, mask);
    return grouped.reshaped(Shape({rows, cols}));
}

void
checkNmInvariant(const Mask &mask, std::int64_t d, const NmPattern &pattern)
{
    panicIf(d % pattern.m != 0, "d not a multiple of M");
    panicIf(mask.size() % static_cast<std::size_t>(d) != 0,
            "mask size not a multiple of d");
    const std::int64_t ng = static_cast<std::int64_t>(mask.size()) / d;
    for (std::int64_t row = 0; row < ng; ++row) {
        for (std::int64_t g0 = 0; g0 < d; g0 += pattern.m) {
            int kept = 0;
            for (int i = 0; i < pattern.m; ++i)
                kept += mask[static_cast<std::size_t>(row * d + g0 + i)];
            panicIf(kept != pattern.n, "N:M invariant violated at row ",
                    row, " group ", g0, ": ", kept, " kept");
        }
    }
}

} // namespace mvq::core
