/**
 * @file
 * Combinatorial mask codec (paper Section 5). A N:M-pruned group of M
 * weights admits only C(M,N) distinct masks, so instead of storing one bit
 * per weight the accelerator stores a ceil(log2 C(M,N))-bit code per group
 * and expands it through a look-up table in the weight loader. This is
 * what makes mask storage cheap enough for extreme compression
 * (e.g. 4:16 -> 11/16 bits per weight instead of 1).
 */

#ifndef MVQ_CORE_MASK_CODEC_HPP
#define MVQ_CORE_MASK_CODEC_HPP

#include <cstdint>
#include <vector>

#include "core/nm_pruning.hpp"

namespace mvq::core {

/**
 * Encoder/decoder between M-element 0/1 masks with exactly N set bits and
 * compact combinatorial ranks. Also materializes the hardware LUT.
 */
class MaskCodec
{
  public:
    explicit MaskCodec(const NmPattern &pattern);

    const NmPattern &pattern() const { return pattern_; }

    /** Number of valid codes: C(M, N). */
    std::uint64_t codeCount() const { return count_; }

    /** Bits per M-group code: ceil(log2 C(M,N)). */
    int bitsPerGroup() const { return bits_; }

    /** Mask storage cost in bits per weight (paper's b_m accounting). */
    double
    bitsPerWeight() const
    {
        return static_cast<double>(bits_)
            / static_cast<double>(pattern_.m);
    }

    /**
     * Encode one M-group of mask bits (exactly N set) to its rank.
     *
     * @param group_bits Pointer to M mask bytes (0/1).
     */
    std::uint32_t encodeGroup(const std::uint8_t *group_bits) const;

    /** Decode a rank back to M mask bytes. */
    std::vector<std::uint8_t> decodeGroup(std::uint32_t code) const;

    /**
     * Allocation-free decode of one rank into M bytes at `out`. This is
     * the hot-loop form: the weight loader and the compressed-row packer
     * call it once per stored group code, so it must not churn the heap.
     */
    void decodeGroupInto(std::uint32_t code, std::uint8_t *out) const;

    /**
     * Decode `n_codes` consecutive group codes into n_codes * M bytes at
     * `out` — one LUT pass over a whole stored mask-code stream (e.g.
     * CompressedLayer::mask_codes).
     */
    void decodeInto(const std::uint32_t *codes, std::int64_t n_codes,
                    std::uint8_t *out) const;

    /**
     * Encode a whole subvector mask of length d (d % M == 0) into d/M
     * group codes.
     */
    std::vector<std::uint32_t> encodeSubvector(const std::uint8_t *mask_bits,
                                               std::int64_t d) const;

    /** Decode d/M group codes back into a d-element mask. */
    std::vector<std::uint8_t> decodeSubvector(
        const std::vector<std::uint32_t> &codes) const;

    /**
     * The hardware look-up table: entry i is the M-bit mask (LSB = element
     * 0) for code i. The weight loader indexes this with the stored code.
     */
    const std::vector<std::uint32_t> &lut() const { return lut_; }

  private:
    NmPattern pattern_;
    std::uint64_t count_;
    int bits_;
    std::vector<std::uint32_t> lut_;
};

} // namespace mvq::core

#endif // MVQ_CORE_MASK_CODEC_HPP
