/**
 * @file
 * Masked k-means clustering (paper Section 4.4). The assignment step
 * measures distance only over a subvector's unpruned positions (Eq. 2) and
 * the update step averages only unpruned contributions per position
 * (Eq. 3/4), so pruned zeros never drag codewords toward the origin.
 *
 * With an all-ones mask this degrades exactly to standard k-means, which
 * the tests exploit for cross-validation.
 */

#ifndef MVQ_CORE_MASKED_KMEANS_HPP
#define MVQ_CORE_MASKED_KMEANS_HPP

#include <cstdint>
#include <vector>

#include "core/nm_pruning.hpp"
#include "tensor/tensor.hpp"

namespace mvq::core {

/** Options shared by masked and plain k-means. */
struct KmeansConfig
{
    std::int64_t k = 256;        //!< codeword count
    int max_iters = 60;
    /**
     * Convergence: stop when the fraction of subvectors changing
     * assignment drops below this (the paper uses 0.1%).
     */
    double change_threshold = 0.001;
    std::uint64_t seed = 42;
    bool kmeanspp_init = false;  //!< paper initializes from random rows
};

/** Clustering output. */
struct KmeansResult
{
    Tensor codebook;             //!< [k, d]
    std::vector<std::int32_t> assignments; //!< one per subvector
    double sse = 0.0;            //!< final masked SSE (Eq. 1)
    int iterations = 0;
    std::vector<double> sse_history; //!< masked SSE after each update
};

/**
 * Run masked k-means on a grouped weight matrix.
 *
 * @param wr   [NG, d] weights with pruned positions already zeroed.
 * @param mask NG*d bytes; 1 marks unpruned positions.
 */
KmeansResult maskedKmeans(const Tensor &wr, const Mask &mask,
                          const KmeansConfig &cfg);

/**
 * Masked SSE (Eq. 1): sum over subvectors of
 * || w_j - c_{a_j} o bm_j ||^2. With an all-ones mask this is the plain
 * clustering SSE.
 */
double maskedSse(const Tensor &wr, const Mask &mask, const Tensor &codebook,
                 const std::vector<std::int32_t> &assignments);

/**
 * Reconstruct the grouped matrix from codebook + assignments, applying the
 * mask ("sparse reconstruct"): row j = codeword[a_j] o bm_j.
 */
Tensor reconstructGrouped(const Tensor &codebook,
                          const std::vector<std::int32_t> &assignments,
                          const Mask &mask);

/** Dense reconstruct: row j = codeword[a_j] (mask ignored). */
Tensor reconstructGroupedDense(const Tensor &codebook,
                               const std::vector<std::int32_t> &assignments);

} // namespace mvq::core

#endif // MVQ_CORE_MASKED_KMEANS_HPP
