/**
 * @file
 * Masked k-means clustering (paper Section 4.4). The assignment step
 * measures distance only over a subvector's unpruned positions (Eq. 2) and
 * the update step averages only unpruned contributions per position
 * (Eq. 3/4), so pruned zeros never drag codewords toward the origin.
 *
 * With an all-ones mask this degrades exactly to standard k-means, which
 * the tests exploit for cross-validation.
 */

#ifndef MVQ_CORE_MASKED_KMEANS_HPP
#define MVQ_CORE_MASKED_KMEANS_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "core/nm_pruning.hpp"
#include "tensor/tensor.hpp"

namespace mvq::core {

/**
 * maskedAssign takes the sparse compressed-row distance kernel when a
 * row's kept-position count times this ratio is at most d (i.e. at most
 * half the row survives the mask); denser rows take the full-row
 * branchless kernel. Exposed so tests and benches can pick masks that
 * target either path deliberately.
 */
constexpr std::int64_t kAssignSparseKeepRatio = 2;

/** Options shared by masked and plain k-means. */
struct KmeansConfig
{
    std::int64_t k = 256;        //!< codeword count
    int max_iters = 60;
    /**
     * Convergence: stop when the fraction of subvectors changing
     * assignment drops below this (the paper uses 0.1%).
     */
    double change_threshold = 0.001;
    std::uint64_t seed = 42;
    bool kmeanspp_init = false;  //!< paper initializes from random rows
};

/** Clustering output. */
struct KmeansResult
{
    Tensor codebook;             //!< [k, d]
    std::vector<std::int32_t> assignments; //!< one per subvector
    double sse = 0.0;            //!< final masked SSE (Eq. 1)
    int iterations = 0;
    std::vector<double> sse_history; //!< masked SSE after each update
};

/**
 * Run masked k-means on a grouped weight matrix.
 *
 * @param wr   [NG, d] weights with pruned positions already zeroed.
 * @param mask NG*d bytes; 1 marks unpruned positions.
 */
KmeansResult maskedKmeans(const Tensor &wr, const Mask &mask,
                          const KmeansConfig &cfg);

/** Convert a 0/1 byte mask into a 0.0/1.0 float multiplier buffer. */
std::vector<float> maskToFloat(const Mask &mask);

/**
 * Deterministic parallel scatter-reduction into [k, d] sums/counts
 * tensors: rows [0, ng) accumulate through row_fn into per-chunk partial
 * buffers which then fold together in chunk order, so the result is
 * bit-identical at any thread count. row_fn(j, sums, counts) adds row j's
 * contribution into raw k*d buffers. Shared by the k-means centroid
 * update and codeword gradient aggregation.
 */
void maskedPartialSums(
    std::int64_t ng, std::int64_t k, std::int64_t d,
    const std::function<void(std::int64_t, float *, float *)> &row_fn,
    Tensor &sums, Tensor &counts);

/**
 * One masked assignment sweep (Eq. 2): for each subvector pick the
 * codeword minimizing the masked distance, using the mask as a 0/1 float
 * multiplier (branchless inner loop), partitioned across threads.
 *
 * @param mask01 NG*d float multipliers from maskToFloat().
 * @param[in,out] assignments Updated in place; must hold NG entries.
 * @return Number of subvectors whose assignment changed.
 */
std::int64_t maskedAssign(const Tensor &wr, const std::vector<float> &mask01,
                          const Tensor &codebook,
                          std::vector<std::int32_t> &assignments);

/**
 * Masked SSE (Eq. 1): sum over subvectors of
 * || w_j - c_{a_j} o bm_j ||^2. With an all-ones mask this is the plain
 * clustering SSE.
 */
double maskedSse(const Tensor &wr, const Mask &mask, const Tensor &codebook,
                 const std::vector<std::int32_t> &assignments);

/**
 * Reconstruct the grouped matrix from codebook + assignments, applying the
 * mask ("sparse reconstruct"): row j = codeword[a_j] o bm_j.
 */
Tensor reconstructGrouped(const Tensor &codebook,
                          const std::vector<std::int32_t> &assignments,
                          const Mask &mask);

/** Dense reconstruct: row j = codeword[a_j] (mask ignored). */
Tensor reconstructGroupedDense(const Tensor &codebook,
                               const std::vector<std::int32_t> &assignments);

} // namespace mvq::core

#endif // MVQ_CORE_MASKED_KMEANS_HPP
