/**
 * @file
 * Mixed layerwise N:M pattern search — the extension the paper points
 * to via DominoSearch [Sun et al., NeurIPS 2021]: instead of one global
 * N:M pattern, choose a per-layer N (with fixed M) meeting a global
 * sparsity budget while removing the least salient weight mass.
 *
 * The search is greedy: every layer starts at the densest pattern
 * (N = M); the layer whose next decrement removes the least magnitude
 * per pruned weight is decremented until the global budget is met.
 */

#ifndef MVQ_CORE_MIXED_SPARSITY_HPP
#define MVQ_CORE_MIXED_SPARSITY_HPP

#include "core/grouping.hpp"
#include "core/nm_pruning.hpp"
#include "nn/conv2d.hpp"

namespace mvq::core {

/** Result of the mixed-pattern search. */
struct MixedPatternResult
{
    std::vector<NmPattern> patterns; //!< one per target layer
    double achieved_sparsity = 0.0;  //!< global fraction pruned
    /** Magnitude mass removed (sum |w| of pruned weights). */
    double pruned_magnitude = 0.0;
};

/**
 * Choose per-layer keep counts.
 *
 * @param targets        Conv layers to sparsify.
 * @param m              Group size M (d must be a multiple of it).
 * @param target_sparsity Desired global pruned fraction in (0, 1).
 * @param d              Subvector length used for grouping.
 * @param min_n          Lower bound on per-layer N (>= 1).
 */
MixedPatternResult chooseLayerwisePatterns(
    const std::vector<nn::Conv2d *> &targets, int m,
    double target_sparsity, std::int64_t d, Grouping grouping,
    int min_n = 1);

/**
 * Magnitude mass that uniform N:M pruning would remove from the
 * targets (the baseline the mixed search must beat).
 */
double uniformPrunedMagnitude(const std::vector<nn::Conv2d *> &targets,
                              const NmPattern &pattern, std::int64_t d,
                              Grouping grouping);

} // namespace mvq::core

#endif // MVQ_CORE_MIXED_SPARSITY_HPP
