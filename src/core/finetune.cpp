#include "core/finetune.hpp"

#include <numeric>
#include <vector>

#include "common/logging.hpp"
#include "core/masked_kmeans.hpp"
#include "nn/conv2d.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"

namespace mvq::core {

Tensor
aggregateCodewordGrad(const Tensor &grad_wr, const Mask &mask,
                      const std::vector<std::int32_t> &assignments,
                      std::int64_t k, bool masked)
{
    const std::int64_t ng = grad_wr.dim(0);
    const std::int64_t d = grad_wr.dim(1);
    fatalIf(static_cast<std::int64_t>(assignments.size()) != ng,
            "assignment count mismatch in gradient aggregation");
    fatalIf(static_cast<std::int64_t>(mask.size()) != ng * d,
            "mask size mismatch in gradient aggregation");

    // Deterministic parallel scatter-reduction (shared with the k-means
    // centroid update); the mask enters as a 0/1 multiplier so the inner
    // loop stays branchless.
    const float *pg = grad_wr.data();
    const std::uint8_t *pm = mask.data();
    Tensor sums;
    Tensor counts;
    maskedPartialSums(
        ng, k, d,
        [&](std::int64_t j, float *ps, float *pn) {
            const std::int32_t a = assignments[static_cast<std::size_t>(j)];
            const float *grow = pg + j * d;
            const std::uint8_t *mrow = pm + j * d;
            float *srow = ps + a * d;
            float *nrow = pn + a * d;
            for (std::int64_t t = 0; t < d; ++t) {
                const float keep = (!masked || mrow[t]) ? 1.0f : 0.0f;
                srow[t] += keep * grow[t];
                nrow[t] += keep;
            }
        },
        sums, counts);
    Tensor grad(Shape({k, d}));
    for (std::int64_t i = 0; i < k * d; ++i)
        grad[i] = counts[i] > 0.0f ? sums[i] / counts[i] : 0.0f;
    return grad;
}

CodebookTrainer::CodebookTrainer(CompressedModel &compressed,
                                 nn::Layer &net,
                                 const FinetuneConfig &config)
    : cm(compressed), model(net), cfg(config),
      cbOpt(cfg.codebook_lr),
      otherOpt(cfg.other_lr, cfg.momentum, 0.0f)
{
    // Latent full-precision copies of each codebook, optimized by Adam;
    // the model always sees the re-quantized projection.
    for (auto &cb : cm.codebooks)
        latent.emplace_back("codebook", cb.codewords);

    // Resolve conv pointers once.
    auto convs = nn::convLayers(model);
    for (const auto &layer : cm.layers) {
        nn::Conv2d *target = nullptr;
        for (nn::Conv2d *conv : convs) {
            if (conv->name() == layer.name) {
                target = conv;
                break;
            }
        }
        fatalIf(target == nullptr, "no conv named ", layer.name);
        targets.push_back(target);
        masks.push_back(layer.decodeMask());
    }

    // Everything that is not a compressed kernel trains normally.
    for (nn::Parameter *p : model.allParameters()) {
        bool is_compressed = false;
        for (nn::Conv2d *conv : targets) {
            if (p == &conv->weight()) {
                is_compressed = true;
                break;
            }
        }
        if (!is_compressed)
            otherParams.push_back(p);
    }

    applyReconstruction();
}

void
CodebookTrainer::applyReconstruction()
{
    for (std::size_t i = 0; i < cm.codebooks.size(); ++i) {
        cm.codebooks[i].codewords = latent[i].value;
        requantizeCodebook(cm.codebooks[i]);
    }
    for (std::size_t i = 0; i < cm.layers.size(); ++i)
        targets[i]->setWeight(cm.reconstructLayer(i));
}

void
CodebookTrainer::step()
{
    for (auto &p : latent)
        p.grad.fill(0.0f);
    for (std::size_t i = 0; i < cm.layers.size(); ++i) {
        const auto &layer = cm.layers[i];
        Tensor grad_wr = groupWeights(targets[i]->weight().grad,
                                      layer.cfg.d, layer.cfg.grouping);
        Tensor g = aggregateCodewordGrad(
            grad_wr, masks[i], layer.assignments,
            cm.codebooks[static_cast<std::size_t>(layer.codebook_id)].k(),
            cfg.masked_gradients && !cm.dense_reconstruct);
        addInPlace(
            latent[static_cast<std::size_t>(layer.codebook_id)].grad, g);
    }

    std::vector<nn::Parameter *> cb_params;
    for (auto &p : latent)
        cb_params.push_back(&p);
    cbOpt.step(cb_params);
    otherOpt.step(otherParams);
    applyReconstruction();
}

namespace {

template <typename DataSet, typename LossFn>
void
runEpochs(CodebookTrainer &tuner, nn::Layer &model, const DataSet &data,
          LossFn &&loss_fn, const FinetuneConfig &cfg)
{
    Rng rng(cfg.seed);
    const auto &train_set = data.trainSet();
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::vector<int> order(train_set.size());
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(cfg.batch_size)) {
            const std::size_t end = std::min(order.size(),
                start + static_cast<std::size_t>(cfg.batch_size));
            std::vector<int> batch(order.begin()
                + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(end));

            model.zeroGrad();
            Tensor images = data.batchImages(train_set, batch);
            std::vector<int> labels = data.batchLabels(train_set, batch);
            Tensor out = model.forward(images, /*train=*/true);
            nn::LossResult lr = loss_fn(out, labels);
            model.backward(lr.grad);
            tuner.step();
        }
    }
}

} // namespace

double
finetuneCompressedClassifier(CompressedModel &cm, nn::Layer &model,
                             const nn::ClassificationDataset &data,
                             const FinetuneConfig &cfg)
{
    CodebookTrainer tuner(cm, model, cfg);
    runEpochs(tuner, model, data,
              [](const Tensor &logits, const std::vector<int> &labels) {
                  return nn::softmaxCrossEntropy(logits, labels);
              },
              cfg);
    return nn::evalClassifier(model, data, data.testSet());
}

double
finetuneCompressedSegmenter(CompressedModel &cm, nn::Layer &model,
                            const nn::SegmentationDataset &data,
                            const FinetuneConfig &cfg)
{
    CodebookTrainer tuner(cm, model, cfg);
    runEpochs(tuner, model, data,
              [](const Tensor &logits, const std::vector<int> &labels) {
                  return nn::pixelwiseCrossEntropy(logits, labels);
              },
              cfg);
    return nn::evalSegmenterMiou(model, data, data.testSet());
}

} // namespace mvq::core
