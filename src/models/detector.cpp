#include "models/detector.hpp"

#include <numeric>

#include "common/logging.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/reshape.hpp"
#include "nn/upsample.hpp"
#include "tensor/ops.hpp"

namespace mvq::models {

namespace {

void
convBnRelu(nn::Sequential &seq, const std::string &name, Rng &rng,
           std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
           std::int64_t stride, std::int64_t pad)
{
    nn::Conv2dConfig cfg{in_c, out_c, kernel, stride, pad, 1, false};
    seq.add<nn::Conv2d>(name, cfg, rng);
    seq.add<nn::BatchNorm2d>(name + ".bn", out_c);
    seq.add<nn::ReLU>(name + ".relu");
}

} // namespace

MiniDetector::MiniDetector(const MiniConfig &cfg, std::int64_t image_size)
{
    fatalIf(image_size % 2 != 0, "detector expects even image size");
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;

    backbone_ = std::make_unique<nn::Sequential>("backbone");
    convBnRelu(*backbone_, "stem", rng, cfg.in_channels, w, 3, 1, 1);
    convBnRelu(*backbone_, "c1", rng, w, 2 * w, 3, 2, 1);
    convBnRelu(*backbone_, "c2", rng, 2 * w, 2 * w, 3, 1, 1);
    convBnRelu(*backbone_, "c3", rng, 2 * w, 4 * w, 3, 1, 1);

    classHead = std::make_unique<nn::Sequential>("class_head");
    classHead->add<nn::GlobalAvgPool>("class_gap");
    classHead->add<nn::Linear>("class_fc", 4 * w, cfg.classes, rng);

    boxHead = std::make_unique<nn::Sequential>("box_head");
    boxHead->add<nn::Flatten>("box_flatten");
    const std::int64_t feat = image_size / 2;
    boxHead->add<nn::Linear>("box_fc", 4 * w * feat * feat, 4, rng);

    maskHead = std::make_unique<nn::Sequential>("mask_head");
    nn::Conv2dConfig mask_cfg{4 * w, 2, 3, 1, 1, 1, true};
    Rng mask_rng(cfg.seed + 1);
    maskHead->add<nn::Conv2d>("mask_conv", mask_cfg, mask_rng);
    maskHead->add<nn::UpsampleNearest>("mask_up", 2);
}

DetectorOutput
MiniDetector::forwardAll(const Tensor &images, bool train)
{
    Tensor feat = backbone_->forward(images, train);
    DetectorOutput out;
    out.class_logits = classHead->forward(feat, train);
    out.box_pred = boxHead->forward(feat, train);
    out.mask_logits = maskHead->forward(feat, train);
    return out;
}

void
MiniDetector::backwardAll(const Tensor &g_class, const Tensor &g_box,
                          const Tensor &g_mask)
{
    Tensor g_feat = classHead->backward(g_class);
    // The box head trains as a regression probe on the shared features:
    // its parameter gradients are kept, but its feature gradient is not
    // propagated into the backbone. Joint propagation destabilizes the
    // classification features at these model scales (the full-scale
    // analogue is the paper's frozen-backbone fine-tuning of heads).
    boxHead->backward(g_box);
    addInPlace(g_feat, maskHead->backward(g_mask));
    backbone_->backward(g_feat);
}

Tensor
MiniDetector::forward(const Tensor &, bool)
{
    panic("MiniDetector::forward: use forwardAll");
}

Tensor
MiniDetector::backward(const Tensor &)
{
    panic("MiniDetector::backward: use backwardAll");
}

std::vector<nn::Layer *>
MiniDetector::children()
{
    return {backbone_.get(), classHead.get(), boxHead.get(),
            maskHead.get()};
}

namespace {

/** Ground-truth tensors for one batch. */
struct DetTargets
{
    std::vector<int> labels;
    Tensor boxes;            //!< [N, 4] normalized
    std::vector<int> mask_px; //!< N*H*W {0,1}
};

DetTargets
gatherTargets(const nn::DetectionDataset &data,
              const std::vector<nn::DetSample> &set,
              const std::vector<int> &indices)
{
    const auto s = static_cast<float>(data.config().size);
    DetTargets t;
    t.boxes = Tensor(Shape({static_cast<std::int64_t>(indices.size()), 4}));
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const auto &smp = set[static_cast<std::size_t>(indices[i])];
        t.labels.push_back(smp.label);
        t.boxes.at(static_cast<std::int64_t>(i), 0) = smp.box.x0 / s;
        t.boxes.at(static_cast<std::int64_t>(i), 1) = smp.box.y0 / s;
        t.boxes.at(static_cast<std::int64_t>(i), 2) = smp.box.x1 / s;
        t.boxes.at(static_cast<std::int64_t>(i), 3) = smp.box.y1 / s;
        t.mask_px.insert(t.mask_px.end(), smp.mask.begin(),
                         smp.mask.end());
    }
    return t;
}

/** Joint loss; fills gradients for all three heads. */
struct DetLoss
{
    double loss = 0.0;
    Tensor g_class;
    Tensor g_box;
    Tensor g_mask;
};

DetLoss
detectorLoss(const DetectorOutput &out, const DetTargets &targets,
             const DetectorTrainConfig &cfg)
{
    DetLoss dl;
    nn::LossResult cls = nn::softmaxCrossEntropy(out.class_logits,
                                                 targets.labels);
    nn::LossResult box = nn::mseLoss(out.box_pred, targets.boxes);
    nn::LossResult mask = nn::pixelwiseCrossEntropy(out.mask_logits,
                                                    targets.mask_px);
    dl.loss = cls.loss + cfg.box_loss_weight * box.loss
        + cfg.mask_loss_weight * mask.loss;
    dl.g_class = cls.grad;
    dl.g_box = box.grad;
    scaleInPlace(dl.g_box, cfg.box_loss_weight);
    dl.g_mask = mask.grad;
    scaleInPlace(dl.g_mask, cfg.mask_loss_weight);
    return dl;
}

} // namespace

void
trainDetector(MiniDetector &det, const nn::DetectionDataset &data,
              const DetectorTrainConfig &cfg)
{
    Rng rng(cfg.seed);
    nn::Sgd opt(cfg.lr, cfg.momentum, 1e-4f);
    const auto &train_set = data.trainSet();

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::vector<int> order(train_set.size());
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(cfg.batch_size)) {
            const std::size_t end = std::min(order.size(),
                start + static_cast<std::size_t>(cfg.batch_size));
            std::vector<int> batch(order.begin()
                + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(end));

            Tensor images = data.batchImages(train_set, batch);
            DetTargets targets = gatherTargets(data, train_set, batch);
            det.zeroGrad();
            DetectorOutput out = det.forwardAll(images, /*train=*/true);
            DetLoss dl = detectorLoss(out, targets, cfg);
            det.backwardAll(dl.g_class, dl.g_box, dl.g_mask);
            opt.step(det.allParameters());
        }
    }
}

DetMetrics
evalDetector(MiniDetector &det, const nn::DetectionDataset &data,
             const std::vector<nn::DetSample> &set, int batch_size)
{
    const float s = static_cast<float>(data.config().size);
    std::size_t bb_hits = 0;
    std::size_t mk_hits = 0;
    std::size_t total = 0;

    for (std::size_t i = 0; i < set.size();
         i += static_cast<std::size_t>(batch_size)) {
        const std::size_t end =
            std::min(set.size(), i + static_cast<std::size_t>(batch_size));
        std::vector<int> idx;
        for (std::size_t j = i; j < end; ++j)
            idx.push_back(static_cast<int>(j));
        Tensor images = data.batchImages(set, idx);
        DetectorOutput out = det.forwardAll(images, /*train=*/false);
        const std::vector<int> pred = nn::argmaxRows(out.class_logits);

        const std::int64_t hh = out.mask_logits.dim(2);
        const std::int64_t ww = out.mask_logits.dim(3);
        for (std::size_t j = 0; j < idx.size(); ++j) {
            const auto &smp = set[static_cast<std::size_t>(idx[j])];
            const bool class_ok = pred[j] == smp.label;
            const std::int64_t n = static_cast<std::int64_t>(j);

            // Predicted box: the tight bounding box of the predicted
            // foreground mask (blended with the auxiliary regressor's
            // output when the mask is empty). Boxes are more forgiving
            // than masks, so AP_bb >= AP_mk, as in the paper's Table 6.
            std::int64_t bx0 = ww, by0 = hh, bx1 = -1, by1 = -1;
            std::int64_t inter = 0, uni = 0;
            for (std::int64_t y = 0; y < hh; ++y) {
                for (std::int64_t x = 0; x < ww; ++x) {
                    const bool p = out.mask_logits.at(n, 1, y, x)
                        > out.mask_logits.at(n, 0, y, x);
                    const bool g = smp.mask[static_cast<std::size_t>(
                        y * ww + x)] != 0;
                    if (p) {
                        bx0 = std::min(bx0, x);
                        by0 = std::min(by0, y);
                        bx1 = std::max(bx1, x + 1);
                        by1 = std::max(by1, y + 1);
                    }
                    if (p && g)
                        ++inter;
                    if (p || g)
                        ++uni;
                }
            }
            nn::Box pb;
            if (bx1 > bx0) {
                pb = nn::Box{static_cast<float>(bx0),
                             static_cast<float>(by0),
                             static_cast<float>(bx1),
                             static_cast<float>(by1)};
            } else {
                pb.x0 = std::clamp(out.box_pred.at(n, 0), 0.0f, 1.0f) * s;
                pb.y0 = std::clamp(out.box_pred.at(n, 1), 0.0f, 1.0f) * s;
                pb.x1 = std::clamp(out.box_pred.at(n, 2), 0.0f, 1.0f) * s;
                pb.y1 = std::clamp(out.box_pred.at(n, 3), 0.0f, 1.0f) * s;
            }
            if (class_ok && nn::boxIou(pb, smp.box) > 0.5f)
                ++bb_hits;
            const double miou = uni > 0
                ? static_cast<double>(inter) / static_cast<double>(uni)
                : 0.0;
            if (class_ok && miou > 0.5)
                ++mk_hits;
            ++total;
        }
    }

    DetMetrics m;
    m.ap_bb = 100.0 * static_cast<double>(bb_hits)
        / static_cast<double>(total);
    m.ap_mk = 100.0 * static_cast<double>(mk_hits)
        / static_cast<double>(total);
    return m;
}

DetMetrics
finetuneCompressedDetector(core::CompressedModel &cm, MiniDetector &det,
                           const nn::DetectionDataset &data,
                           const core::FinetuneConfig &cfg,
                           const DetectorTrainConfig &train_cfg)
{
    core::CodebookTrainer tuner(cm, det, cfg);
    Rng rng(cfg.seed);
    const auto &train_set = data.trainSet();

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::vector<int> order(train_set.size());
        std::iota(order.begin(), order.end(), 0);
        rng.shuffle(order);
        for (std::size_t start = 0; start < order.size();
             start += static_cast<std::size_t>(cfg.batch_size)) {
            const std::size_t end = std::min(order.size(),
                start + static_cast<std::size_t>(cfg.batch_size));
            std::vector<int> batch(order.begin()
                + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(end));

            Tensor images = data.batchImages(train_set, batch);
            DetTargets targets = gatherTargets(data, train_set, batch);
            det.zeroGrad();
            DetectorOutput out = det.forwardAll(images, /*train=*/true);
            DetLoss dl = detectorLoss(out, targets, train_cfg);
            det.backwardAll(dl.g_class, dl.g_box, dl.g_mask);
            tuner.step();
        }
    }
    return evalDetector(det, data, data.testSet());
}

} // namespace mvq::models
