/**
 * @file
 * Trainable scaled-down versions of every model family in the paper's
 * evaluation. These train on the synthetic datasets in seconds and are
 * the subjects of the accuracy experiments (Tables 1, 3-6; Figs. 10, 11,
 * 13). All channel counts are multiples of 16 so both d = 8 and d = 16
 * output-channel grouping apply.
 */

#ifndef MVQ_MODELS_MINI_MODELS_HPP
#define MVQ_MODELS_MINI_MODELS_HPP

#include <memory>

#include "nn/network.hpp"

namespace mvq::models {

/** Common knobs for the mini model builders. */
struct MiniConfig
{
    int classes = 10;
    std::int64_t in_channels = 3;
    std::int64_t width = 16; //!< base channel count
    std::uint64_t seed = 31;
};

/** ResNet-18-mini: stem + 3 basic-block stages (w, 2w, 4w) + GAP + FC. */
std::unique_ptr<nn::Sequential> miniResNet18(const MiniConfig &cfg);

/** ResNet-50-mini: stem + 3 bottleneck stages (4x expansion) + GAP + FC. */
std::unique_ptr<nn::Sequential> miniResNet50(const MiniConfig &cfg);

/** VGG-16-mini: stacked 3x3 conv blocks with pooling and an FC head. */
std::unique_ptr<nn::Sequential> miniVgg16(const MiniConfig &cfg);

/** AlexNet-mini: plain conv stack without residuals or BN-free head. */
std::unique_ptr<nn::Sequential> miniAlexNet(const MiniConfig &cfg);

/** MobileNet-v1-mini: depthwise-separable conv pairs. */
std::unique_ptr<nn::Sequential> miniMobileNetV1(const MiniConfig &cfg);

/** MobileNet-v2-mini: inverted residual bottlenecks with ReLU6. */
std::unique_ptr<nn::Sequential> miniMobileNetV2(const MiniConfig &cfg);

/** EfficientNet-mini: MBConv stack (no squeeze-excite; documented). */
std::unique_ptr<nn::Sequential> miniEfficientNet(const MiniConfig &cfg);

/**
 * DeepLab-mini: encoder at stride 2 plus a dense classification head and
 * nearest upsampling back to input resolution. Output is
 * [N, classes, H, W] (paper's DeepLab-v3 substitute for Table 6).
 */
std::unique_ptr<nn::Sequential> miniDeepLab(const MiniConfig &cfg);

/** Builder lookup by family name used by the comparison benches. */
std::unique_ptr<nn::Sequential> miniModelByName(const std::string &name,
                                                const MiniConfig &cfg);

} // namespace mvq::models

#endif // MVQ_MODELS_MINI_MODELS_HPP
