#include "models/layer_spec.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace mvq::models {

std::int64_t
ModelSpec::totalConvMacs() const
{
    std::int64_t n = 0;
    for (const auto &c : convs)
        n += c.macs();
    return n;
}

std::int64_t
ModelSpec::totalMacs() const
{
    std::int64_t n = totalConvMacs();
    for (const auto &f : fcs)
        n += f.macs();
    return n;
}

std::int64_t
ModelSpec::totalConvWeights() const
{
    std::int64_t n = 0;
    for (const auto &c : convs)
        n += c.weightCount();
    return n;
}

std::int64_t
ModelSpec::totalWeights() const
{
    std::int64_t n = totalConvWeights();
    for (const auto &f : fcs)
        n += f.weightCount();
    return n;
}

std::int64_t
ModelSpec::maxIfmapElems() const
{
    std::int64_t m = 0;
    for (const auto &c : convs)
        m = std::max(m, c.in_c * c.in_h * c.in_w);
    return m;
}

namespace {

/** Incremental builder tracking the running spatial size. */
class SpecBuilder
{
  public:
    SpecBuilder(std::string name, std::int64_t in_c, std::int64_t hw)
        : channels(in_c), size(hw)
    {
        spec.name = std::move(name);
    }

    /** Append a conv; updates running channels/spatial size. */
    SpecBuilder &
    conv(const std::string &name, std::int64_t out_c, std::int64_t kernel,
         std::int64_t stride, std::int64_t pad, std::int64_t groups = 1)
    {
        ConvLayerSpec c;
        c.name = name;
        c.out_c = out_c;
        c.in_c = channels;
        c.kernel = kernel;
        c.stride = stride;
        c.pad = pad;
        c.groups = groups;
        c.in_h = size;
        c.in_w = size;
        spec.convs.push_back(c);
        channels = out_c;
        size = c.outH();
        return *this;
    }

    /** Depthwise conv over the current channel count. */
    SpecBuilder &
    dwconv(const std::string &name, std::int64_t kernel, std::int64_t stride,
           std::int64_t pad)
    {
        return conv(name, channels, kernel, stride, pad, channels);
    }

    /** Pooling: only the spatial size changes. */
    SpecBuilder &
    pool(std::int64_t kernel, std::int64_t stride, std::int64_t pad = 0)
    {
        size = (size + 2 * pad - kernel) / stride + 1;
        return *this;
    }

    /** Global pooling collapses the plane. */
    SpecBuilder &
    gap()
    {
        size = 1;
        return *this;
    }

    SpecBuilder &
    fc(const std::string &name, std::int64_t out_features)
    {
        FcLayerSpec f;
        f.name = name;
        f.in_features = channels * size * size;
        f.out_features = out_features;
        spec.fcs.push_back(f);
        channels = out_features;
        size = 1;
        return *this;
    }

    std::int64_t currentChannels() const { return channels; }
    std::int64_t currentSize() const { return size; }

    ModelSpec build() { return spec; }

  private:
    ModelSpec spec;
    std::int64_t channels;
    std::int64_t size;
};

} // namespace

ModelSpec
resnet18Spec()
{
    SpecBuilder b("resnet18", 3, 224);
    b.conv("conv1", 64, 7, 2, 3).pool(3, 2, 1);

    const std::int64_t widths[4] = {64, 128, 256, 512};
    std::int64_t in_c = 64;
    std::int64_t size = 56;
    ModelSpec spec = b.build();
    for (int stage = 0; stage < 4; ++stage) {
        const std::int64_t w = widths[stage];
        for (int block = 0; block < 2; ++block) {
            const std::int64_t stride =
                (stage > 0 && block == 0) ? 2 : 1;
            const std::string prefix = "layer" + std::to_string(stage + 1)
                + "." + std::to_string(block);
            ConvLayerSpec c1{prefix + ".conv1", w, in_c, 3, stride, 1, 1,
                             size, size};
            spec.convs.push_back(c1);
            const std::int64_t out_size = c1.outH();
            spec.convs.push_back({prefix + ".conv2", w, w, 3, 1, 1, 1,
                                  out_size, out_size});
            if (stride != 1 || in_c != w) {
                spec.convs.push_back({prefix + ".down", w, in_c, 1, stride,
                                      0, 1, size, size});
            }
            in_c = w;
            size = out_size;
        }
    }
    spec.fcs.push_back({"fc", 512, 1000});
    return spec;
}

ModelSpec
resnet50Spec()
{
    SpecBuilder b("resnet50", 3, 224);
    b.conv("conv1", 64, 7, 2, 3).pool(3, 2, 1);
    ModelSpec spec = b.build();

    const std::int64_t mids[4] = {64, 128, 256, 512};
    const int counts[4] = {3, 4, 6, 3};
    std::int64_t in_c = 64;
    std::int64_t size = 56;
    for (int stage = 0; stage < 4; ++stage) {
        const std::int64_t mid = mids[stage];
        const std::int64_t out = mid * 4;
        for (int block = 0; block < counts[stage]; ++block) {
            const std::int64_t stride =
                (stage > 0 && block == 0) ? 2 : 1;
            const std::string prefix = "layer" + std::to_string(stage + 1)
                + "." + std::to_string(block);
            spec.convs.push_back({prefix + ".conv1", mid, in_c, 1, 1, 0, 1,
                                  size, size});
            ConvLayerSpec c2{prefix + ".conv2", mid, mid, 3, stride, 1, 1,
                             size, size};
            spec.convs.push_back(c2);
            const std::int64_t out_size = c2.outH();
            spec.convs.push_back({prefix + ".conv3", out, mid, 1, 1, 0, 1,
                                  out_size, out_size});
            if (stride != 1 || in_c != out) {
                spec.convs.push_back({prefix + ".down", out, in_c, 1,
                                      stride, 0, 1, size, size});
            }
            in_c = out;
            size = out_size;
        }
    }
    spec.fcs.push_back({"fc", 2048, 1000});
    return spec;
}

ModelSpec
vgg16Spec()
{
    SpecBuilder b("vgg16", 3, 224);
    const std::int64_t cfg[5][3] = {
        {64, 64, 0}, {128, 128, 0}, {256, 256, 256},
        {512, 512, 512}, {512, 512, 512}};
    int idx = 0;
    for (int blk = 0; blk < 5; ++blk) {
        for (int i = 0; i < 3; ++i) {
            if (cfg[blk][i] == 0)
                continue;
            b.conv("conv" + std::to_string(++idx), cfg[blk][i], 3, 1, 1);
        }
        b.pool(2, 2);
    }
    b.fc("fc1", 4096).fc("fc2", 4096).fc("fc3", 1000);
    return b.build();
}

ModelSpec
alexnetSpec()
{
    SpecBuilder b("alexnet", 3, 224);
    b.conv("conv1", 64, 11, 4, 2).pool(3, 2);
    b.conv("conv2", 192, 5, 1, 2).pool(3, 2);
    b.conv("conv3", 384, 3, 1, 1);
    b.conv("conv4", 256, 3, 1, 1);
    b.conv("conv5", 256, 3, 1, 1).pool(3, 2);
    b.fc("fc1", 4096).fc("fc2", 4096).fc("fc3", 1000);
    return b.build();
}

ModelSpec
mobilenetV1Spec()
{
    SpecBuilder b("mobilenet_v1", 3, 224);
    b.conv("conv1", 32, 3, 2, 1);
    const struct { std::int64_t c; std::int64_t s; } blocks[] = {
        {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
        {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
        {1024, 2}, {1024, 1}};
    int idx = 0;
    for (const auto &blk : blocks) {
        ++idx;
        b.dwconv("dw" + std::to_string(idx), 3, blk.s, 1);
        b.conv("pw" + std::to_string(idx), blk.c, 1, 1, 0);
    }
    b.gap().fc("fc", 1000);
    return b.build();
}

ModelSpec
mobilenetV2Spec()
{
    SpecBuilder b("mobilenet_v2", 3, 224);
    b.conv("conv1", 32, 3, 2, 1);
    // (expansion t, channels c, repeats n, stride s)
    const struct { std::int64_t t, c, n, s; } cfg[] = {
        {1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
        {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1}};
    int idx = 0;
    for (const auto &blk : cfg) {
        for (std::int64_t i = 0; i < blk.n; ++i) {
            ++idx;
            const std::int64_t stride = i == 0 ? blk.s : 1;
            const std::int64_t in_c = b.currentChannels();
            const std::int64_t hidden = in_c * blk.t;
            const std::string p = "block" + std::to_string(idx);
            if (blk.t != 1)
                b.conv(p + ".expand", hidden, 1, 1, 0);
            b.dwconv(p + ".dw", 3, stride, 1);
            b.conv(p + ".project", blk.c, 1, 1, 0);
        }
    }
    b.conv("conv_last", 1280, 1, 1, 0);
    b.gap().fc("fc", 1000);
    return b.build();
}

ModelSpec
efficientnetB0Spec()
{
    SpecBuilder b("efficientnet_b0", 3, 224);
    b.conv("stem", 32, 3, 2, 1);
    // (expansion t, channels c, repeats n, stride s, kernel k)
    const struct { std::int64_t t, c, n, s, k; } cfg[] = {
        {1, 16, 1, 1, 3}, {6, 24, 2, 2, 3}, {6, 40, 2, 2, 5},
        {6, 80, 3, 2, 3}, {6, 112, 3, 1, 5}, {6, 192, 4, 2, 5},
        {6, 320, 1, 1, 3}};
    int idx = 0;
    for (const auto &blk : cfg) {
        for (std::int64_t i = 0; i < blk.n; ++i) {
            ++idx;
            const std::int64_t stride = i == 0 ? blk.s : 1;
            const std::int64_t in_c = b.currentChannels();
            const std::int64_t hidden = in_c * blk.t;
            const std::string p = "mb" + std::to_string(idx);
            if (blk.t != 1)
                b.conv(p + ".expand", hidden, 1, 1, 0);
            b.dwconv(p + ".dw", blk.k, stride, blk.k / 2);
            b.conv(p + ".project", blk.c, 1, 1, 0);
        }
    }
    b.conv("head", 1280, 1, 1, 0);
    b.gap().fc("fc", 1000);
    return b.build();
}

ModelSpec
modelSpecByName(const std::string &name)
{
    if (name == "resnet18")
        return resnet18Spec();
    if (name == "resnet50")
        return resnet50Spec();
    if (name == "vgg16")
        return vgg16Spec();
    if (name == "alexnet")
        return alexnetSpec();
    if (name == "mobilenet_v1")
        return mobilenetV1Spec();
    if (name == "mobilenet_v2")
        return mobilenetV2Spec();
    if (name == "efficientnet_b0")
        return efficientnetB0Spec();
    fatal("unknown model spec: ", name);
}

std::vector<ModelSpec>
hardwareEvalSpecs()
{
    return {resnet18Spec(), resnet50Spec(), vgg16Spec(),
            mobilenetV1Spec(), alexnetSpec()};
}

} // namespace mvq::models
