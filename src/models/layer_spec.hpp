/**
 * @file
 * Full-size layer-shape tables of the CNNs evaluated in the paper's
 * hardware experiments. Only geometry is stored — the accelerator's
 * cycle, access, energy, and area models depend on layer shapes, sparsity
 * and compression parameters, not on trained weight values — so these
 * tables reproduce the exact workloads (ResNet-18/50, VGG-16, AlexNet,
 * MobileNet-v1/v2, EfficientNet-B0 at 224x224 input).
 */

#ifndef MVQ_MODELS_LAYER_SPEC_HPP
#define MVQ_MODELS_LAYER_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace mvq::models {

/** Geometry of one convolution layer. */
struct ConvLayerSpec
{
    std::string name;
    std::int64_t out_c = 1;  //!< K
    std::int64_t in_c = 1;   //!< C (total, before grouping)
    std::int64_t kernel = 3; //!< R (= S)
    std::int64_t stride = 1;
    std::int64_t pad = 0;
    std::int64_t groups = 1; //!< = in_c for depthwise
    std::int64_t in_h = 1;
    std::int64_t in_w = 1;

    // Same clamp as ConvGeom::outH/outW: a negative numerator truncating
    // toward zero would report a bogus positive size for an invalid
    // geometry (and macs() would count FLOPs for it), so it maps to 0.
    std::int64_t outH() const
    {
        const std::int64_t num = in_h + 2 * pad - kernel;
        return num < 0 ? 0 : num / stride + 1;
    }
    std::int64_t outW() const
    {
        const std::int64_t num = in_w + 2 * pad - kernel;
        return num < 0 ? 0 : num / stride + 1;
    }

    bool isDepthwise() const { return groups == in_c && groups == out_c; }
    bool isPointwise() const { return kernel == 1 && groups == 1; }

    /** Kernel element count. */
    std::int64_t
    weightCount() const
    {
        return out_c * (in_c / groups) * kernel * kernel;
    }

    /** Multiply-accumulate count for one image. */
    std::int64_t
    macs() const
    {
        return outH() * outW() * weightCount();
    }
};

/** A fully connected layer (counted for params/FLOPs, not simulated). */
struct FcLayerSpec
{
    std::string name;
    std::int64_t in_features = 1;
    std::int64_t out_features = 1;

    std::int64_t weightCount() const { return in_features * out_features; }
    std::int64_t macs() const { return weightCount(); }
};

/** A whole network as an ordered list of conv layers plus FC layers. */
struct ModelSpec
{
    std::string name;
    std::vector<ConvLayerSpec> convs;
    std::vector<FcLayerSpec> fcs;

    std::int64_t totalConvMacs() const;
    std::int64_t totalMacs() const;
    std::int64_t totalConvWeights() const;
    std::int64_t totalWeights() const;

    /** Largest single input feature map in elements (DRAM spill check). */
    std::int64_t maxIfmapElems() const;
};

/** ResNet-18, 224x224 (1.81 GMACs, 11.7M params). */
ModelSpec resnet18Spec();

/** ResNet-50, 224x224 (4.09 GMACs, 25.6M params). */
ModelSpec resnet50Spec();

/** VGG-16, 224x224 (15.47 GMACs, 138M params). */
ModelSpec vgg16Spec();

/** AlexNet (torchvision variant), 224x224 (0.71 GMACs, 61M params). */
ModelSpec alexnetSpec();

/** MobileNet-v1, 224x224 (0.57 GMACs, 4.2M params). */
ModelSpec mobilenetV1Spec();

/** MobileNet-v2, 224x224 (0.30 GMACs, 3.5M params). */
ModelSpec mobilenetV2Spec();

/** EfficientNet-B0 without SE blocks, 224x224 (~0.39 GMACs). */
ModelSpec efficientnetB0Spec();

/** Look up a spec by lowercase name (resnet18, vgg16, ...). */
ModelSpec modelSpecByName(const std::string &name);

/** All specs used in the hardware evaluation figures. */
std::vector<ModelSpec> hardwareEvalSpecs();

} // namespace mvq::models

#endif // MVQ_MODELS_LAYER_SPEC_HPP
