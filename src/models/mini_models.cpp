#include "models/mini_models.hpp"

#include "common/logging.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/reshape.hpp"
#include "nn/residual.hpp"
#include "nn/upsample.hpp"

namespace mvq::models {

namespace {

using nn::Conv2dConfig;

/** conv + BN + ReLU convenience. */
void
convBnRelu(nn::Sequential &seq, const std::string &name, Rng &rng,
           std::int64_t in_c, std::int64_t out_c, std::int64_t kernel,
           std::int64_t stride, std::int64_t pad, std::int64_t groups = 1,
           bool relu6 = false)
{
    Conv2dConfig cfg;
    cfg.in_channels = in_c;
    cfg.out_channels = out_c;
    cfg.kernel = kernel;
    cfg.stride = stride;
    cfg.pad = pad;
    cfg.groups = groups;
    seq.add<nn::Conv2d>(name, cfg, rng);
    seq.add<nn::BatchNorm2d>(name + ".bn", out_c);
    seq.add<nn::ReLU>(name + ".relu", relu6);
}

/** ResNet basic block. */
std::unique_ptr<nn::Residual>
basicBlock(const std::string &name, Rng &rng, std::int64_t in_c,
           std::int64_t out_c, std::int64_t stride)
{
    auto main = std::make_unique<nn::Sequential>(name + ".main");
    Conv2dConfig c1{in_c, out_c, 3, stride, 1, 1, false};
    main->add<nn::Conv2d>(name + ".conv1", c1, rng);
    main->add<nn::BatchNorm2d>(name + ".bn1", out_c);
    main->add<nn::ReLU>(name + ".relu1");
    Conv2dConfig c2{out_c, out_c, 3, 1, 1, 1, false};
    main->add<nn::Conv2d>(name + ".conv2", c2, rng);
    main->add<nn::BatchNorm2d>(name + ".bn2", out_c);

    std::unique_ptr<nn::Sequential> skip;
    if (stride != 1 || in_c != out_c) {
        skip = std::make_unique<nn::Sequential>(name + ".skip");
        Conv2dConfig cd{in_c, out_c, 1, stride, 0, 1, false};
        skip->add<nn::Conv2d>(name + ".down", cd, rng);
        skip->add<nn::BatchNorm2d>(name + ".bn_down", out_c);
    }
    return std::make_unique<nn::Residual>(name, std::move(main),
                                          std::move(skip), true);
}

/** ResNet bottleneck block (1x1 -> 3x3 -> 1x1 with 4x expansion). */
std::unique_ptr<nn::Residual>
bottleneckBlock(const std::string &name, Rng &rng, std::int64_t in_c,
                std::int64_t mid_c, std::int64_t stride)
{
    const std::int64_t out_c = mid_c * 4;
    auto main = std::make_unique<nn::Sequential>(name + ".main");
    Conv2dConfig c1{in_c, mid_c, 1, 1, 0, 1, false};
    main->add<nn::Conv2d>(name + ".conv1", c1, rng);
    main->add<nn::BatchNorm2d>(name + ".bn1", mid_c);
    main->add<nn::ReLU>(name + ".relu1");
    Conv2dConfig c2{mid_c, mid_c, 3, stride, 1, 1, false};
    main->add<nn::Conv2d>(name + ".conv2", c2, rng);
    main->add<nn::BatchNorm2d>(name + ".bn2", mid_c);
    main->add<nn::ReLU>(name + ".relu2");
    Conv2dConfig c3{mid_c, out_c, 1, 1, 0, 1, false};
    main->add<nn::Conv2d>(name + ".conv3", c3, rng);
    main->add<nn::BatchNorm2d>(name + ".bn3", out_c);

    std::unique_ptr<nn::Sequential> skip;
    if (stride != 1 || in_c != out_c) {
        skip = std::make_unique<nn::Sequential>(name + ".skip");
        Conv2dConfig cd{in_c, out_c, 1, stride, 0, 1, false};
        skip->add<nn::Conv2d>(name + ".down", cd, rng);
        skip->add<nn::BatchNorm2d>(name + ".bn_down", out_c);
    }
    return std::make_unique<nn::Residual>(name, std::move(main),
                                          std::move(skip), true);
}

/** MobileNet-v2 inverted residual block. */
std::unique_ptr<nn::Layer>
invertedResidual(const std::string &name, Rng &rng, std::int64_t in_c,
                 std::int64_t out_c, std::int64_t expand,
                 std::int64_t stride, std::int64_t kernel = 3)
{
    const std::int64_t hidden = in_c * expand;
    auto main = std::make_unique<nn::Sequential>(name + ".main");
    if (expand != 1)
        convBnRelu(*main, name + ".expand", rng, in_c, hidden, 1, 1, 0, 1,
                   true);
    convBnRelu(*main, name + ".dw", rng, hidden, hidden, kernel, stride,
               kernel / 2, hidden, true);
    Conv2dConfig proj{hidden, out_c, 1, 1, 0, 1, false};
    main->add<nn::Conv2d>(name + ".project", proj, rng);
    main->add<nn::BatchNorm2d>(name + ".bn_project", out_c);

    if (stride == 1 && in_c == out_c) {
        // Linear bottleneck: no ReLU after the residual addition.
        return std::make_unique<nn::Residual>(name, std::move(main),
                                              nullptr, false);
    }
    return main;
}

} // namespace

std::unique_ptr<nn::Sequential>
miniResNet18(const MiniConfig &cfg)
{
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;
    auto net = std::make_unique<nn::Sequential>("resnet18_mini");
    convBnRelu(*net, "stem", rng, cfg.in_channels, w, 3, 1, 1);
    net->addLayer(basicBlock("layer1.0", rng, w, w, 1));
    net->addLayer(basicBlock("layer2.0", rng, w, 2 * w, 2));
    net->addLayer(basicBlock("layer3.0", rng, 2 * w, 4 * w, 2));
    net->add<nn::GlobalAvgPool>("gap");
    net->add<nn::Linear>("fc", 4 * w, cfg.classes, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
miniResNet50(const MiniConfig &cfg)
{
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;
    auto net = std::make_unique<nn::Sequential>("resnet50_mini");
    convBnRelu(*net, "stem", rng, cfg.in_channels, w, 3, 1, 1);
    net->addLayer(bottleneckBlock("layer1.0", rng, w, w, 1));
    net->addLayer(bottleneckBlock("layer2.0", rng, 4 * w, w, 2));
    net->addLayer(bottleneckBlock("layer3.0", rng, 4 * w, 2 * w, 2));
    net->add<nn::GlobalAvgPool>("gap");
    net->add<nn::Linear>("fc", 8 * w, cfg.classes, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
miniVgg16(const MiniConfig &cfg)
{
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;
    auto net = std::make_unique<nn::Sequential>("vgg16_mini");
    convBnRelu(*net, "conv1_1", rng, cfg.in_channels, w, 3, 1, 1);
    convBnRelu(*net, "conv1_2", rng, w, w, 3, 1, 1);
    net->add<nn::MaxPool2d>("pool1", 2, 2);
    convBnRelu(*net, "conv2_1", rng, w, 2 * w, 3, 1, 1);
    convBnRelu(*net, "conv2_2", rng, 2 * w, 2 * w, 3, 1, 1);
    net->add<nn::MaxPool2d>("pool2", 2, 2);
    convBnRelu(*net, "conv3_1", rng, 2 * w, 4 * w, 3, 1, 1);
    convBnRelu(*net, "conv3_2", rng, 4 * w, 4 * w, 3, 1, 1);
    net->add<nn::Flatten>("flatten");
    net->add<nn::Linear>("fc1", 4 * w * 3 * 3, 8 * w, rng);
    net->add<nn::ReLU>("fc1.relu");
    net->add<nn::Linear>("fc2", 8 * w, cfg.classes, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
miniAlexNet(const MiniConfig &cfg)
{
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;
    auto net = std::make_unique<nn::Sequential>("alexnet_mini");
    convBnRelu(*net, "conv1", rng, cfg.in_channels, w, 5, 1, 2);
    net->add<nn::MaxPool2d>("pool1", 2, 2);
    convBnRelu(*net, "conv2", rng, w, 2 * w, 3, 1, 1);
    net->add<nn::MaxPool2d>("pool2", 2, 2);
    convBnRelu(*net, "conv3", rng, 2 * w, 4 * w, 3, 1, 1);
    convBnRelu(*net, "conv4", rng, 4 * w, 2 * w, 3, 1, 1);
    net->add<nn::Flatten>("flatten");
    net->add<nn::Linear>("fc1", 2 * w * 3 * 3, 8 * w, rng);
    net->add<nn::ReLU>("fc1.relu");
    net->add<nn::Linear>("fc2", 8 * w, cfg.classes, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
miniMobileNetV1(const MiniConfig &cfg)
{
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;
    auto net = std::make_unique<nn::Sequential>("mobilenet_v1_mini");
    convBnRelu(*net, "stem", rng, cfg.in_channels, w, 3, 1, 1);
    const struct { std::int64_t c, s; } blocks[] = {
        {2 * w, 1}, {2 * w, 2}, {4 * w, 1}, {4 * w, 2}, {8 * w, 1}};
    std::int64_t in_c = w;
    int idx = 0;
    for (const auto &blk : blocks) {
        ++idx;
        const std::string p = "sep" + std::to_string(idx);
        convBnRelu(*net, p + ".dw", rng, in_c, in_c, 3, blk.s, 1, in_c);
        convBnRelu(*net, p + ".pw", rng, in_c, blk.c, 1, 1, 0);
        in_c = blk.c;
    }
    net->add<nn::GlobalAvgPool>("gap");
    net->add<nn::Linear>("fc", in_c, cfg.classes, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
miniMobileNetV2(const MiniConfig &cfg)
{
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;
    auto net = std::make_unique<nn::Sequential>("mobilenet_v2_mini");
    convBnRelu(*net, "stem", rng, cfg.in_channels, w, 3, 1, 1, 1, true);
    net->addLayer(invertedResidual("block1", rng, w, w, 1, 1));
    net->addLayer(invertedResidual("block2", rng, w, 2 * w, 4, 2));
    net->addLayer(invertedResidual("block3", rng, 2 * w, 2 * w, 4, 1));
    net->addLayer(invertedResidual("block4", rng, 2 * w, 4 * w, 4, 2));
    net->addLayer(invertedResidual("block5", rng, 4 * w, 4 * w, 4, 1));
    convBnRelu(*net, "head", rng, 4 * w, 8 * w, 1, 1, 0, 1, true);
    net->add<nn::GlobalAvgPool>("gap");
    net->add<nn::Linear>("fc", 8 * w, cfg.classes, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
miniEfficientNet(const MiniConfig &cfg)
{
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;
    auto net = std::make_unique<nn::Sequential>("efficientnet_mini");
    convBnRelu(*net, "stem", rng, cfg.in_channels, w, 3, 1, 1, 1, true);
    net->addLayer(invertedResidual("mb1", rng, w, w, 1, 1, 3));
    net->addLayer(invertedResidual("mb2", rng, w, 2 * w, 4, 2, 3));
    net->addLayer(invertedResidual("mb3", rng, 2 * w, 2 * w, 4, 1, 5));
    net->addLayer(invertedResidual("mb4", rng, 2 * w, 4 * w, 4, 2, 3));
    convBnRelu(*net, "head", rng, 4 * w, 8 * w, 1, 1, 0, 1, true);
    net->add<nn::GlobalAvgPool>("gap");
    net->add<nn::Linear>("fc", 8 * w, cfg.classes, rng);
    return net;
}

std::unique_ptr<nn::Sequential>
miniDeepLab(const MiniConfig &cfg)
{
    Rng rng(cfg.seed);
    const std::int64_t w = cfg.width;
    auto net = std::make_unique<nn::Sequential>("deeplab_mini");
    convBnRelu(*net, "stem", rng, cfg.in_channels, w, 3, 1, 1);
    convBnRelu(*net, "enc1", rng, w, 2 * w, 3, 2, 1);
    net->addLayer(invertedResidual("enc2", rng, 2 * w, 2 * w, 4, 1));
    net->addLayer(invertedResidual("enc3", rng, 2 * w, 2 * w, 4, 1));
    convBnRelu(*net, "aspp", rng, 2 * w, 4 * w, 3, 1, 1);
    Conv2dConfig cls{4 * w, cfg.classes, 1, 1, 0, 1, true};
    net->add<nn::Conv2d>("classifier", cls, rng);
    net->add<nn::UpsampleNearest>("upsample", 2);
    return net;
}

std::unique_ptr<nn::Sequential>
miniModelByName(const std::string &name, const MiniConfig &cfg)
{
    if (name == "resnet18")
        return miniResNet18(cfg);
    if (name == "resnet50")
        return miniResNet50(cfg);
    if (name == "vgg16")
        return miniVgg16(cfg);
    if (name == "alexnet")
        return miniAlexNet(cfg);
    if (name == "mobilenet_v1")
        return miniMobileNetV1(cfg);
    if (name == "mobilenet_v2")
        return miniMobileNetV2(cfg);
    if (name == "efficientnet")
        return miniEfficientNet(cfg);
    if (name == "deeplab")
        return miniDeepLab(cfg);
    fatal("unknown mini model: ", name);
}

} // namespace mvq::models
