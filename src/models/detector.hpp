/**
 * @file
 * Detection-proxy model standing in for the paper's ResNet-50 Mask-RCNN
 * (Table 6). A shared conv backbone feeds three heads: classification
 * (GAP + FC), box regression (GAP + FC -> normalized x0,y0,x1,y1), and a
 * dense 2-class mask head. Metrics are AP proxies: the fraction of test
 * images whose class is correct AND whose predicted box (resp. mask) has
 * IoU > 0.5 with the ground truth. DESIGN.md documents this substitution.
 */

#ifndef MVQ_MODELS_DETECTOR_HPP
#define MVQ_MODELS_DETECTOR_HPP

#include "core/compressed_layer.hpp"
#include "core/finetune.hpp"
#include "models/mini_models.hpp"
#include "nn/dataset.hpp"

namespace mvq::models {

/** The three head outputs of one forward pass. */
struct DetectorOutput
{
    Tensor class_logits; //!< [N, classes]
    Tensor box_pred;     //!< [N, 4], normalized corners
    Tensor mask_logits;  //!< [N, 2, H, W]
};

/**
 * Multi-head detector. Implements Layer only for parameter/conv traversal
 * (children()); use detectorForward/detectorBackward instead of the Layer
 * forward/backward, which panic by design.
 */
class MiniDetector : public nn::Layer
{
  public:
    MiniDetector(const MiniConfig &cfg, std::int64_t image_size);

    DetectorOutput forwardAll(const Tensor &images, bool train);

    /** Backward through all three heads and the backbone. */
    void backwardAll(const Tensor &g_class, const Tensor &g_box,
                     const Tensor &g_mask);

    nn::Sequential &backbone() { return *backbone_; }

    // Layer interface (traversal only).
    Tensor forward(const Tensor &, bool) override;
    Tensor backward(const Tensor &) override;
    std::vector<nn::Layer *> children() override;
    std::string name() const override { return "mini_detector"; }

  private:
    std::unique_ptr<nn::Sequential> backbone_;
    std::unique_ptr<nn::Sequential> classHead;
    std::unique_ptr<nn::Sequential> boxHead;
    std::unique_ptr<nn::Sequential> maskHead;
};

/** AP-proxy metrics (percent, 0-100). */
struct DetMetrics
{
    double ap_bb = 0.0;
    double ap_mk = 0.0;
};

/** Options for detector training. */
struct DetectorTrainConfig
{
    int epochs = 8;
    int batch_size = 32;
    float lr = 0.05f;
    float momentum = 0.9f;
    float box_loss_weight = 4.0f;
    float mask_loss_weight = 0.5f;
    std::uint64_t seed = 37;
};

/** Train the detector with SGD on the joint loss. */
void trainDetector(MiniDetector &det, const nn::DetectionDataset &data,
                   const DetectorTrainConfig &cfg);

/** Evaluate AP proxies over a sample set. */
DetMetrics evalDetector(MiniDetector &det, const nn::DetectionDataset &data,
                        const std::vector<nn::DetSample> &set,
                        int batch_size = 32);

/**
 * Codebook fine-tuning of a compressed detector backbone, driving
 * core::CodebookTrainer with the detector's custom forward/backward.
 */
DetMetrics finetuneCompressedDetector(core::CompressedModel &cm,
                                      MiniDetector &det,
                                      const nn::DetectionDataset &data,
                                      const core::FinetuneConfig &cfg,
                                      const DetectorTrainConfig &train_cfg);

} // namespace mvq::models

#endif // MVQ_MODELS_DETECTOR_HPP
