#include "nn/pooling.hpp"

#include <limits>

#include "common/logging.hpp"

namespace mvq::nn {

Tensor
MaxPool2d::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    const std::int64_t n = x.dim(0);
    const std::int64_t c = x.dim(1);
    const std::int64_t h = x.dim(2);
    const std::int64_t w = x.dim(3);
    const std::int64_t oh = (h + 2 * pad - kernel) / stride + 1;
    const std::int64_t ow = (w + 2 * pad - kernel) / stride + 1;
    fatalIf(oh <= 0 || ow <= 0, name_, ": empty output");

    Tensor out(Shape({n, c, oh, ow}));
    if (train) {
        cachedInShape = x.shape();
        argmax.assign(static_cast<std::size_t>(out.numel()), -1);
    }

    std::int64_t oi = 0;
    for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xx = 0; xx < ow; ++xx, ++oi) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_idx = -1;
                    for (std::int64_t ky = 0; ky < kernel; ++ky) {
                        const std::int64_t iy = y * stride - pad + ky;
                        if (iy < 0 || iy >= h)
                            continue;
                        for (std::int64_t kx = 0; kx < kernel; ++kx) {
                            const std::int64_t iw = xx * stride - pad + kx;
                            if (iw < 0 || iw >= w)
                                continue;
                            const float v = x.at(b, ch, iy, iw);
                            if (v > best) {
                                best = v;
                                best_idx = x.shape().at(b, ch, iy, iw);
                            }
                        }
                    }
                    out[oi] = best_idx >= 0 ? best : 0.0f;
                    if (train)
                        argmax[static_cast<std::size_t>(oi)] = best_idx;
                }
            }
        }
    }
    return out;
}

Tensor
MaxPool2d::backward(const Tensor &grad_out)
{
    fatalIf(argmax.empty(), name_, ": backward without forward");
    Tensor grad_in(cachedInShape);
    for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
        const std::int64_t src = argmax[static_cast<std::size_t>(i)];
        if (src >= 0)
            grad_in[src] += grad_out[i];
    }
    return grad_in;
}

Tensor
AvgPool2d::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    const std::int64_t n = x.dim(0);
    const std::int64_t c = x.dim(1);
    const std::int64_t h = x.dim(2);
    const std::int64_t w = x.dim(3);
    const std::int64_t oh = (h - kernel) / stride + 1;
    const std::int64_t ow = (w - kernel) / stride + 1;
    fatalIf(oh <= 0 || ow <= 0, name_, ": empty output");

    Tensor out(Shape({n, c, oh, ow}));
    const float inv = 1.0f / static_cast<float>(kernel * kernel);
    for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xx = 0; xx < ow; ++xx) {
                    float s = 0.0f;
                    for (std::int64_t ky = 0; ky < kernel; ++ky)
                        for (std::int64_t kx = 0; kx < kernel; ++kx)
                            s += x.at(b, ch, y * stride + ky,
                                      xx * stride + kx);
                    out.at(b, ch, y, xx) = s * inv;
                }
            }
        }
    }
    if (train)
        cachedInShape = x.shape();
    return out;
}

Tensor
AvgPool2d::backward(const Tensor &grad_out)
{
    fatalIf(cachedInShape.numel() == 0, name_, ": backward without forward");
    Tensor grad_in(cachedInShape);
    const std::int64_t oh = grad_out.dim(2);
    const std::int64_t ow = grad_out.dim(3);
    const float inv = 1.0f / static_cast<float>(kernel * kernel);
    for (std::int64_t b = 0; b < grad_out.dim(0); ++b) {
        for (std::int64_t ch = 0; ch < grad_out.dim(1); ++ch) {
            for (std::int64_t y = 0; y < oh; ++y) {
                for (std::int64_t xx = 0; xx < ow; ++xx) {
                    const float g = grad_out.at(b, ch, y, xx) * inv;
                    for (std::int64_t ky = 0; ky < kernel; ++ky)
                        for (std::int64_t kx = 0; kx < kernel; ++kx)
                            grad_in.at(b, ch, y * stride + ky,
                                       xx * stride + kx) += g;
                }
            }
        }
    }
    return grad_in;
}

Tensor
GlobalAvgPool::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    const std::int64_t n = x.dim(0);
    const std::int64_t c = x.dim(1);
    const std::int64_t hw = x.dim(2) * x.dim(3);
    Tensor out(Shape({n, c}));
    for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            double s = 0.0;
            const float *p = x.data() + (b * c + ch) * hw;
            for (std::int64_t i = 0; i < hw; ++i)
                s += p[i];
            out.at(b, ch) = static_cast<float>(s / static_cast<double>(hw));
        }
    }
    if (train)
        cachedInShape = x.shape();
    return out;
}

Tensor
GlobalAvgPool::backward(const Tensor &grad_out)
{
    fatalIf(cachedInShape.numel() == 0, name_, ": backward without forward");
    Tensor grad_in(cachedInShape);
    const std::int64_t c = cachedInShape.dim(1);
    const std::int64_t hw = cachedInShape.dim(2) * cachedInShape.dim(3);
    const float inv = 1.0f / static_cast<float>(hw);
    for (std::int64_t b = 0; b < grad_out.dim(0); ++b) {
        for (std::int64_t ch = 0; ch < c; ++ch) {
            const float g = grad_out.at(b, ch) * inv;
            float *p = grad_in.data() + (b * c + ch) * hw;
            for (std::int64_t i = 0; i < hw; ++i)
                p[i] = g;
        }
    }
    return grad_in;
}

} // namespace mvq::nn
