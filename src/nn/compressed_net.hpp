/**
 * @file
 * The batched compressed-inference network: a forward-only chain of
 * CompressedConv2d layers built from one shared core::io::ModelArtifact.
 * Every layer borrows the artifact's cached packed operands
 * (ModelArtifact::packedOperands), so N CompressedNet instances — and,
 * with an MVQI image, N processes — share one operand set and
 * construction does no decode and no packing beyond the artifact's own
 * first touch. forward() takes any batch size B and is const, so one
 * instance serves concurrent callers; it is the batched forward entry
 * the serving runtime (src/serve) coalesces requests into.
 *
 * Like CompressedConv2d this is deliberately not an nn::Layer: no
 * backward, no parameters, no activations — a pure conv chain whose
 * per-image outputs are bit-identical whether images run batched or one
 * at a time (each (batch, group) pair is an independent gemm under the
 * repo determinism contract), which is what lets the serving layer
 * batch aggressively without changing results.
 */

#ifndef MVQ_NN_COMPRESSED_NET_HPP
#define MVQ_NN_COMPRESSED_NET_HPP

#include <cstdint>
#include <vector>

#include "nn/compressed_conv2d.hpp"

namespace mvq::core::io {
class ModelArtifact;
} // namespace mvq::core::io

namespace mvq::nn {

/** Convolution geometry the compressed container does not store. */
struct ConvGeomSpec
{
    std::int64_t stride = 1;
    std::int64_t pad = 1;
};

/** Forward-only chain of compressed convs over shared artifact operands. */
class CompressedNet
{
  public:
    /**
     * Build one CompressedConv2d per artifact layer, in artifact order,
     * each over the artifact's shared packed operands at its baked conv
     * group count.
     *
     * @param geom Per-layer stride/pad; empty means stride 1 / pad 1 for
     *        every layer ("same" geometry for 3x3 kernels). A non-empty
     *        vector must have exactly one entry per layer.
     */
    explicit CompressedNet(const core::io::ModelArtifact &artifact,
                           const std::vector<ConvGeomSpec> &geom = {});

    /**
     * NCHW batched forward through every layer in order. Per-image
     * output slabs are bit-identical for any batch composition and any
     * MVQ_NUM_THREADS within an ISA.
     */
    Tensor forward(const Tensor &x) const;

    std::int64_t
    layerCount() const
    {
        return static_cast<std::int64_t>(layers_.size());
    }

    const CompressedConv2d &
    layer(std::int64_t i) const
    {
        return layers_[static_cast<std::size_t>(i)];
    }

    /** Channels the first layer expects (C of a [C, H, W] request). */
    std::int64_t inChannels() const { return in_channels_; }

  private:
    std::vector<CompressedConv2d> layers_;
    std::int64_t in_channels_ = 0;
};

} // namespace mvq::nn

#endif // MVQ_NN_COMPRESSED_NET_HPP
