/**
 * @file
 * Shape adapters: Flatten (NCHW -> [N, C*H*W]).
 */

#ifndef MVQ_NN_RESHAPE_HPP
#define MVQ_NN_RESHAPE_HPP

#include "nn/layer.hpp"

namespace mvq::nn {

/** Flatten all non-batch dimensions. */
class Flatten : public Layer
{
  public:
    explicit Flatten(std::string name) : name_(std::move(name)) {}

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    Shape cachedInShape;
};

} // namespace mvq::nn

#endif // MVQ_NN_RESHAPE_HPP
