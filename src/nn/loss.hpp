/**
 * @file
 * Loss functions. These are free-standing (not Layers): they take the
 * network output and targets, and return the scalar loss plus the gradient
 * with respect to the network output.
 */

#ifndef MVQ_NN_LOSS_HPP
#define MVQ_NN_LOSS_HPP

#include <vector>

#include "tensor/tensor.hpp"

namespace mvq::nn {

/** Loss value and gradient w.r.t. the logits/predictions. */
struct LossResult
{
    double loss = 0.0;
    Tensor grad;
};

/**
 * Mean softmax cross-entropy over a batch.
 *
 * @param logits [N, classes].
 * @param labels N class indices.
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<int> &labels);

/**
 * Per-pixel mean softmax cross-entropy for dense prediction.
 *
 * @param logits [N, classes, H, W].
 * @param labels [N * H * W] class indices in row-major (n, h, w) order.
 */
LossResult pixelwiseCrossEntropy(const Tensor &logits,
                                 const std::vector<int> &labels);

/** Mean squared error between prediction and target (same shape). */
LossResult mseLoss(const Tensor &pred, const Tensor &target);

/** Argmax class per row of a [N, classes] tensor. */
std::vector<int> argmaxRows(const Tensor &logits);

/** Top-1 accuracy of logits against labels, in [0, 100]. */
double top1Accuracy(const Tensor &logits, const std::vector<int> &labels);

} // namespace mvq::nn

#endif // MVQ_NN_LOSS_HPP
