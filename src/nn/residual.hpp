/**
 * @file
 * Residual block: y = relu(main(x) + skip(x)). The skip path is identity
 * when empty. Used by the ResNet- and MobileNet-v2-style mini models.
 */

#ifndef MVQ_NN_RESIDUAL_HPP
#define MVQ_NN_RESIDUAL_HPP

#include "nn/network.hpp"

namespace mvq::nn {

/** Two-branch additive block with optional final ReLU. */
class Residual : public Layer
{
  public:
    /**
     * @param main       Main branch (owned).
     * @param skip       Skip branch (owned); nullptr means identity.
     * @param final_relu Apply ReLU after the addition (ResNet) or not
     *                   (MobileNet-v2 linear bottleneck).
     */
    Residual(std::string name, std::unique_ptr<Sequential> main,
             std::unique_ptr<Sequential> skip, bool final_relu = true);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Layer *> children() override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    std::unique_ptr<Sequential> mainPath;
    std::unique_ptr<Sequential> skipPath; //!< nullptr => identity
    bool finalRelu;
    Tensor cachedSum; //!< pre-ReLU sum, for the final ReLU backward
};

} // namespace mvq::nn

#endif // MVQ_NN_RESIDUAL_HPP
