#include "nn/reshape.hpp"

#include "common/logging.hpp"

namespace mvq::nn {

Tensor
Flatten::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() < 2, name_, ": expected batched input");
    const std::int64_t n = x.dim(0);
    const std::int64_t rest = x.numel() / n;
    if (train)
        cachedInShape = x.shape();
    return x.reshaped(Shape({n, rest}));
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    fatalIf(cachedInShape.numel() == 0, name_, ": backward without forward");
    return grad_out.reshaped(cachedInShape);
}

} // namespace mvq::nn
