#include "nn/upsample.hpp"

#include "common/logging.hpp"

namespace mvq::nn {

Tensor
UpsampleNearest::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    const std::int64_t n = x.dim(0);
    const std::int64_t c = x.dim(1);
    const std::int64_t h = x.dim(2);
    const std::int64_t w = x.dim(3);
    Tensor out(Shape({n, c, h * factor, w * factor}));
    for (std::int64_t b = 0; b < n; ++b)
        for (std::int64_t ch = 0; ch < c; ++ch)
            for (std::int64_t y = 0; y < h * factor; ++y)
                for (std::int64_t xx = 0; xx < w * factor; ++xx)
                    out.at(b, ch, y, xx) = x.at(b, ch, y / factor,
                                                xx / factor);
    if (train)
        cachedInShape = x.shape();
    return out;
}

Tensor
UpsampleNearest::backward(const Tensor &grad_out)
{
    fatalIf(cachedInShape.numel() == 0, name_, ": backward without forward");
    Tensor grad_in(cachedInShape);
    const std::int64_t h = cachedInShape.dim(2);
    const std::int64_t w = cachedInShape.dim(3);
    for (std::int64_t b = 0; b < grad_out.dim(0); ++b)
        for (std::int64_t ch = 0; ch < grad_out.dim(1); ++ch)
            for (std::int64_t y = 0; y < h * factor; ++y)
                for (std::int64_t xx = 0; xx < w * factor; ++xx)
                    grad_in.at(b, ch, y / factor, xx / factor) +=
                        grad_out.at(b, ch, y, xx);
    return grad_in;
}

} // namespace mvq::nn
