#include "nn/network.hpp"

#include "common/logging.hpp"
#include "nn/conv2d.hpp"

namespace mvq::nn {

Layer *
Sequential::addLayer(LayerPtr layer)
{
    Layer *raw = layer.get();
    layers.push_back(std::move(layer));
    return raw;
}

Tensor
Sequential::forward(const Tensor &x, bool train)
{
    Tensor cur = x;
    for (auto &l : layers)
        cur = l->forward(cur, train);
    return cur;
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor cur = grad_out;
    for (auto it = layers.rbegin(); it != layers.rend(); ++it)
        cur = (*it)->backward(cur);
    return cur;
}

std::vector<Layer *>
Sequential::children()
{
    std::vector<Layer *> out;
    out.reserve(layers.size());
    for (auto &l : layers)
        out.push_back(l.get());
    return out;
}

std::int64_t
Sequential::flops() const
{
    return 0; // accounted by the per-layer sum in networkFlops()
}

std::vector<Conv2d *>
convLayers(Layer &root)
{
    std::vector<Conv2d *> out;
    for (Layer *l : root.allLayers()) {
        if (auto *conv = dynamic_cast<Conv2d *>(l))
            out.push_back(conv);
    }
    return out;
}

std::int64_t
parameterCount(Layer &root)
{
    std::int64_t n = 0;
    for (Parameter *p : root.allParameters())
        n += p->value.numel();
    return n;
}

std::int64_t
networkFlops(Layer &root)
{
    std::int64_t n = 0;
    for (Layer *l : root.allLayers())
        n += l->flops();
    return n;
}

std::vector<Tensor>
snapshotParameters(Layer &root)
{
    std::vector<Tensor> out;
    for (Parameter *p : root.allParameters())
        out.push_back(p->value);
    return out;
}

void
restoreParameters(Layer &root, const std::vector<Tensor> &snapshot)
{
    auto params = root.allParameters();
    fatalIf(params.size() != snapshot.size(),
            "snapshot size mismatch: ", snapshot.size(), " vs ",
            params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        fatalIf(params[i]->value.shape() != snapshot[i].shape(),
                "snapshot shape mismatch at parameter ", params[i]->name);
        params[i]->value = snapshot[i];
    }
}

} // namespace mvq::nn
