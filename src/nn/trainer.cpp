#include "nn/trainer.hpp"

#include <numeric>

#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "nn/loss.hpp"

namespace mvq::nn {

namespace {

/** Shuffled index batches over a set size. */
std::vector<std::vector<int>>
makeBatches(Rng &rng, std::size_t count, int batch_size)
{
    std::vector<int> order(count);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::vector<std::vector<int>> batches;
    for (std::size_t i = 0; i < count; i += static_cast<std::size_t>(batch_size)) {
        const std::size_t end =
            std::min(count, i + static_cast<std::size_t>(batch_size));
        batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(i),
                             order.begin() + static_cast<std::ptrdiff_t>(end));
    }
    return batches;
}

} // namespace

TrainStats
trainClassifier(Layer &model, const ClassificationDataset &data,
                const TrainConfig &cfg)
{
    Rng rng(cfg.seed);
    Sgd opt(cfg.lr, cfg.momentum, cfg.weight_decay);
    TrainStats stats;

    if (cfg.verbose)
        inform("parallel runtime: ", numThreads(), " threads");

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        const auto batches =
            makeBatches(rng, data.trainSet().size(), cfg.batch_size);
        double loss_sum = 0.0;
        double acc_sum = 0.0;
        for (const auto &batch : batches) {
            Tensor images = data.batchImages(data.trainSet(), batch);
            std::vector<int> labels = data.batchLabels(data.trainSet(), batch);

            model.zeroGrad();
            Tensor logits = model.forward(images, /*train=*/true);
            LossResult lr = softmaxCrossEntropy(logits, labels);
            model.backward(lr.grad);
            if (cfg.before_step)
                cfg.before_step(model);
            opt.step(model.allParameters());
            if (cfg.after_step)
                cfg.after_step(model);

            loss_sum += lr.loss;
            acc_sum += top1Accuracy(logits, labels);
        }
        stats.final_loss = loss_sum / static_cast<double>(batches.size());
        stats.train_accuracy = acc_sum / static_cast<double>(batches.size());
        if (cfg.verbose) {
            inform("epoch ", epoch, " loss ", stats.final_loss,
                   " train-acc ", stats.train_accuracy);
        }
    }
    stats.test_accuracy = evalClassifier(model, data, data.testSet());
    return stats;
}

double
evalClassifier(Layer &model, const ClassificationDataset &data,
               const std::vector<Sample> &set, int batch_size)
{
    double acc_weighted = 0.0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < set.size();
         i += static_cast<std::size_t>(batch_size)) {
        const std::size_t end =
            std::min(set.size(), i + static_cast<std::size_t>(batch_size));
        std::vector<int> idx;
        for (std::size_t j = i; j < end; ++j)
            idx.push_back(static_cast<int>(j));
        Tensor images = data.batchImages(set, idx);
        std::vector<int> labels = data.batchLabels(set, idx);
        Tensor logits = model.forward(images, /*train=*/false);
        acc_weighted +=
            top1Accuracy(logits, labels) * static_cast<double>(idx.size());
        total += idx.size();
    }
    return total ? acc_weighted / static_cast<double>(total) : 0.0;
}

TrainStats
trainSegmenter(Layer &model, const SegmentationDataset &data,
               const TrainConfig &cfg)
{
    Rng rng(cfg.seed);
    Sgd opt(cfg.lr, cfg.momentum, cfg.weight_decay);
    TrainStats stats;

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        const auto batches =
            makeBatches(rng, data.trainSet().size(), cfg.batch_size);
        double loss_sum = 0.0;
        for (const auto &batch : batches) {
            Tensor images = data.batchImages(data.trainSet(), batch);
            std::vector<int> labels = data.batchLabels(data.trainSet(), batch);

            model.zeroGrad();
            Tensor logits = model.forward(images, /*train=*/true);
            LossResult lr = pixelwiseCrossEntropy(logits, labels);
            model.backward(lr.grad);
            if (cfg.before_step)
                cfg.before_step(model);
            opt.step(model.allParameters());
            if (cfg.after_step)
                cfg.after_step(model);
            loss_sum += lr.loss;
        }
        stats.final_loss = loss_sum / static_cast<double>(batches.size());
        if (cfg.verbose)
            inform("epoch ", epoch, " seg loss ", stats.final_loss);
    }
    stats.test_accuracy = evalSegmenterMiou(model, data, data.testSet());
    return stats;
}

double
evalSegmenterMiou(Layer &model, const SegmentationDataset &data,
                  const std::vector<SegSample> &set, int batch_size)
{
    const int classes = data.config().classes;
    std::vector<std::int64_t> inter(static_cast<std::size_t>(classes), 0);
    std::vector<std::int64_t> uni(static_cast<std::size_t>(classes), 0);

    for (std::size_t i = 0; i < set.size();
         i += static_cast<std::size_t>(batch_size)) {
        const std::size_t end =
            std::min(set.size(), i + static_cast<std::size_t>(batch_size));
        std::vector<int> idx;
        for (std::size_t j = i; j < end; ++j)
            idx.push_back(static_cast<int>(j));
        Tensor images = data.batchImages(set, idx);
        std::vector<int> labels = data.batchLabels(set, idx);
        Tensor logits = model.forward(images, /*train=*/false);

        const std::int64_t n = logits.dim(0);
        const std::int64_t c = logits.dim(1);
        const std::int64_t h = logits.dim(2);
        const std::int64_t w = logits.dim(3);
        std::size_t li = 0;
        for (std::int64_t b = 0; b < n; ++b) {
            for (std::int64_t y = 0; y < h; ++y) {
                for (std::int64_t x = 0; x < w; ++x, ++li) {
                    int pred = 0;
                    for (std::int64_t j = 1; j < c; ++j) {
                        if (logits.at(b, j, y, x) > logits.at(b, pred, y, x))
                            pred = static_cast<int>(j);
                    }
                    const int gt = labels[li];
                    if (pred == gt) {
                        ++inter[static_cast<std::size_t>(gt)];
                        ++uni[static_cast<std::size_t>(gt)];
                    } else {
                        ++uni[static_cast<std::size_t>(gt)];
                        ++uni[static_cast<std::size_t>(pred)];
                    }
                }
            }
        }
    }

    double miou = 0.0;
    int present = 0;
    for (int c = 0; c < classes; ++c) {
        if (uni[static_cast<std::size_t>(c)] > 0) {
            miou += static_cast<double>(inter[static_cast<std::size_t>(c)])
                / static_cast<double>(uni[static_cast<std::size_t>(c)]);
            ++present;
        }
    }
    return present ? 100.0 * miou / static_cast<double>(present) : 0.0;
}

} // namespace mvq::nn
