#include "nn/residual.hpp"

#include "common/logging.hpp"
#include "tensor/ops.hpp"

namespace mvq::nn {

Residual::Residual(std::string name, std::unique_ptr<Sequential> main,
                   std::unique_ptr<Sequential> skip, bool final_relu)
    : name_(std::move(name)),
      mainPath(std::move(main)),
      skipPath(std::move(skip)),
      finalRelu(final_relu)
{
    fatalIf(!mainPath, name_, ": main path required");
}

Tensor
Residual::forward(const Tensor &x, bool train)
{
    Tensor a = mainPath->forward(x, train);
    Tensor b = skipPath ? skipPath->forward(x, train) : x;
    fatalIf(a.shape() != b.shape(),
            name_, ": branch shapes differ: ", a.shape().str(), " vs ",
            b.shape().str());
    Tensor s = add(a, b);
    if (!finalRelu)
        return s;
    if (train)
        cachedSum = s;
    Tensor out(s.shape());
    for (std::int64_t i = 0; i < s.numel(); ++i)
        out[i] = s[i] > 0.0f ? s[i] : 0.0f;
    return out;
}

Tensor
Residual::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    if (finalRelu) {
        fatalIf(cachedSum.numel() == 0, name_, ": backward without forward");
        for (std::int64_t i = 0; i < g.numel(); ++i) {
            if (cachedSum[i] <= 0.0f)
                g[i] = 0.0f;
        }
    }
    Tensor ga = mainPath->backward(g);
    Tensor gb = skipPath ? skipPath->backward(g) : g;
    addInPlace(ga, gb);
    return ga;
}

std::vector<Layer *>
Residual::children()
{
    std::vector<Layer *> out{mainPath.get()};
    if (skipPath)
        out.push_back(skipPath.get());
    return out;
}

} // namespace mvq::nn
