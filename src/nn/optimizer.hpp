/**
 * @file
 * First-order optimizers over Parameter lists: SGD with momentum, Adam and
 * AdamW. These drive both network training and MVQ codebook fine-tuning
 * (Eq. 6 of the paper applies the optimizer to masked codeword gradients).
 */

#ifndef MVQ_NN_OPTIMIZER_HPP
#define MVQ_NN_OPTIMIZER_HPP

#include <unordered_map>
#include <vector>

#include "nn/layer.hpp"

namespace mvq::nn {

/** Shared optimizer interface. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Apply one update step from each parameter's .grad to its .value. */
    virtual void step(const std::vector<Parameter *> &params) = 0;

    /** Reset any per-parameter state (moments, step counters). */
    virtual void reset() = 0;
};

/** SGD with classical momentum and decoupled L2 weight decay. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(float learning_rate, float momentum_val = 0.9f,
                 float weight_decay = 0.0f)
        : lr(learning_rate), momentum(momentum_val),
          weightDecay(weight_decay)
    {
    }

    void step(const std::vector<Parameter *> &params) override;
    void reset() override { velocity.clear(); }

    float lr;

  private:
    float momentum;
    float weightDecay;
    std::unordered_map<Parameter *, std::vector<float>> velocity;
};

/** Adam / AdamW (decoupled weight decay when adamw = true). */
class Adam : public Optimizer
{
  public:
    Adam(float learning_rate, float b1 = 0.9f, float b2 = 0.999f,
         float epsilon = 1e-8f, float weight_decay = 0.0f,
         bool adamw = false)
        : lr(learning_rate), beta1(b1), beta2(b2), eps(epsilon),
          weightDecay(weight_decay), decoupled(adamw)
    {
    }

    void step(const std::vector<Parameter *> &params) override;
    void reset() override { state.clear(); }

    float lr;

  private:
    struct Moments
    {
        std::vector<float> m;
        std::vector<float> v;
        std::int64_t t = 0;
    };

    float beta1;
    float beta2;
    float eps;
    float weightDecay;
    bool decoupled;
    std::unordered_map<Parameter *, Moments> state;
};

} // namespace mvq::nn

#endif // MVQ_NN_OPTIMIZER_HPP
