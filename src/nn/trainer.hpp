/**
 * @file
 * Generic training/evaluation loops for classification and segmentation
 * models built from the Layer hierarchy.
 */

#ifndef MVQ_NN_TRAINER_HPP
#define MVQ_NN_TRAINER_HPP

#include <functional>

#include "nn/dataset.hpp"
#include "nn/layer.hpp"
#include "nn/optimizer.hpp"

namespace mvq::nn {

/** Options controlling a training run. */
struct TrainConfig
{
    int epochs = 4;
    int batch_size = 32;
    float lr = 0.05f;
    float momentum = 0.9f;
    float weight_decay = 1e-4f;
    std::uint64_t seed = 17;
    bool verbose = false;

    /**
     * Called immediately before each optimizer step with the model; used by
     * SR-STE sparse training and by compression-aware fine-tuning to edit
     * gradients or re-apply masks.
     */
    std::function<void(Layer &)> before_step;

    /** Called after each optimizer step (e.g. to re-project weights). */
    std::function<void(Layer &)> after_step;
};

/** Summary of a training run. */
struct TrainStats
{
    double final_loss = 0.0;
    double train_accuracy = 0.0; //!< on the last epoch's batches
    double test_accuracy = 0.0;
};

/**
 * Train a classifier (model maps NCHW images to [N, classes] logits) with
 * SGD + momentum.
 */
TrainStats trainClassifier(Layer &model, const ClassificationDataset &data,
                           const TrainConfig &cfg);

/** Top-1 accuracy of the model over a sample set, in [0, 100]. */
double evalClassifier(Layer &model, const ClassificationDataset &data,
                      const std::vector<Sample> &set, int batch_size = 64);

/**
 * Train a dense-prediction model (NCHW in, [N, classes, H, W] logits out)
 * with pixelwise cross-entropy.
 */
TrainStats trainSegmenter(Layer &model, const SegmentationDataset &data,
                          const TrainConfig &cfg);

/** Mean intersection-over-union over classes, in [0, 100]. */
double evalSegmenterMiou(Layer &model, const SegmentationDataset &data,
                         const std::vector<SegSample> &set,
                         int batch_size = 32);

} // namespace mvq::nn

#endif // MVQ_NN_TRAINER_HPP
