#include "nn/compressed_conv2d.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace mvq::nn {

CompressedConv2d::CompressedConv2d(const core::CompressedLayer &layer,
                                   const core::Codebook &codebook,
                                   std::int64_t stride, std::int64_t pad,
                                   std::int64_t groups)
    : name_(layer.name), weight_shape_(layer.weight_shape), stride_(stride),
      pad_(pad), groups_(groups)
{
    fatalIf(stride_ <= 0, name_, ": stride must be positive");
    fatalIf(pad_ < 0, name_, ": negative padding");
    fatalIf(groups_ <= 0, name_, ": groups must be positive");
    fatalIf(weight_shape_.dim(0) % groups_ != 0,
            name_, ": out channels not divisible by groups");

    // The pack stage: decode the mask codes once and pack each group's
    // row range straight into its own grouped operand (rows sharing a
    // kept-column pattern tiled together for the multi-row kernel) — no
    // full-operand pack followed by per-group slice copies.
    group_rows_ = std::make_shared<const std::vector<GroupedSparseMatrix>>(
        layer.packGroupedRows(codebook, groups_));
    for (const auto &sp : *group_rows_)
        nnz_ += sp.rows.nnz();
}

CompressedConv2d::CompressedConv2d(
    std::string name, const Shape &weight_shape,
    std::shared_ptr<const std::vector<GroupedSparseMatrix>> operands,
    std::int64_t stride, std::int64_t pad)
    : name_(std::move(name)), weight_shape_(weight_shape), stride_(stride),
      pad_(pad), groups_(0), group_rows_(std::move(operands))
{
    fatalIf(stride_ <= 0, name_, ": stride must be positive");
    fatalIf(pad_ < 0, name_, ": negative padding");
    fatalIf(weight_shape_.rank() != 4, name_,
            ": expected a 4-D kernel shape, got ", weight_shape_.str());
    fatalIf(group_rows_ == nullptr || group_rows_->empty(), name_,
            ": no packed operands injected");
    groups_ = static_cast<std::int64_t>(group_rows_->size());
    fatalIf(weight_shape_.dim(0) % groups_ != 0,
            name_, ": out channels not divisible by groups");
    const std::int64_t kg = weight_shape_.dim(0) / groups_;
    const std::int64_t unrolled =
        weight_shape_.dim(1) * weight_shape_.dim(2) * weight_shape_.dim(3);
    for (const auto &sp : *group_rows_) {
        fatalIf(sp.rows.rows != kg || sp.rows.cols != unrolled, name_,
                ": injected operand geometry ", sp.rows.rows, "x",
                sp.rows.cols, " does not match the kernel shape ",
                weight_shape_.str(), " with ", groups_, " groups");
        nnz_ += sp.rows.nnz();
    }
}

std::int64_t
CompressedConv2d::flopsFor(const Tensor &x) const
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    const ConvGeom g{weight_shape_.dim(1), x.dim(2), x.dim(3),
                     weight_shape_.dim(2), weight_shape_.dim(3), stride_,
                     pad_};
    return x.dim(0) * nnz_ * g.outH() * g.outW();
}

double
CompressedConv2d::density() const
{
    const std::int64_t total = weight_shape_.numel();
    return total != 0
        ? static_cast<double>(nnz_) / static_cast<double>(total)
        : 0.0;
}

Tensor
CompressedConv2d::forward(const Tensor &x) const
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    const std::int64_t cg = weight_shape_.dim(1);
    fatalIf(x.dim(1) != cg * groups_, name_, ": input channels ", x.dim(1),
            " != ", cg * groups_);

    const std::int64_t batch = x.dim(0);
    const std::int64_t out_c = weight_shape_.dim(0);
    const std::int64_t kg = out_c / groups_;
    ConvGeom g{cg, x.dim(2), x.dim(3), weight_shape_.dim(2),
               weight_shape_.dim(3), stride_, pad_};
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    fatalIf(oh <= 0 || ow <= 0, name_, ": empty output feature map");

    Tensor out(Shape({batch, out_c, oh, ow}));

    // Same schedule as Conv2d::forward: each (batch, group) pair fills a
    // disjoint slab of out, and the sparse gemm writes into that slab
    // directly (the kg output channels are contiguous in NCHW). When the
    // pairs cannot fill the pool, run them serially so the inner
    // im2col/gemm gets all the threads.
    //
    // The fused path (default) is where PR3's B-side-traffic gap closes:
    // gemmSparseAIm2col packs patches straight into the B panels the
    // sparse micro-kernel reads, never materializing the cols tensor.
    // MVQ_FUSED_CONV=0 restores the materializing path; both are
    // bit-identical. The grouped operand routes bucketed rows through the
    // multi-row kernel (MVQ_SPARSE_MULTIROW=0 restores the single-row
    // walk over the embedded full operand, bit-identically per ISA).
    const bool fused = fusedConvEnabled();
    const std::int64_t work = batch * groups_;
    auto run_pair = [&](std::int64_t w) {
        const std::int64_t n = w / groups_;
        const std::int64_t grp = w % groups_;
        float *po = out.data() + ((n * out_c + grp * kg) * oh * ow);
        const GroupedSparseMatrix &rows =
            (*group_rows_)[static_cast<std::size_t>(grp)];
        if (fused) {
            const float *slab = x.data()
                + (n * cg * groups_ + grp * cg) * g.in_h * g.in_w;
            gemmSparseAIm2col(rows, Im2colB{slab, g}, 1.0f, 0.0f, po,
                              oh * ow);
        } else {
            const Tensor cols = im2col(x, n, g, grp * cg);
            gemmSparseARaw(rows, cols.data(), oh * ow, oh * ow, 1.0f, 0.0f,
                           po, oh * ow);
        }
    };
    if (work < numThreads()) {
        for (std::int64_t w = 0; w < work; ++w)
            run_pair(w);
    } else {
        parallelFor(0, work, 1, [&](std::int64_t wb, std::int64_t we) {
            for (std::int64_t w = wb; w < we; ++w)
                run_pair(w);
        });
    }

    return out;
}

} // namespace mvq::nn
