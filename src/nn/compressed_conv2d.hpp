/**
 * @file
 * Inference path that consumes a compressed layer directly: the stored
 * N:M mask codes are decoded ONCE at construction into a per-row
 * compressed-column gemm operand (core::CompressedLayer::packSparseRows),
 * and every forward pass runs a fused-packing sparse-A gemm over it
 * (gemmSparseAIm2col: convolution patches pack straight from the input
 * image into gemm B panels, no intermediate cols tensor) — pruned
 * positions are never multiplied, so the 4:16 MAC reduction the paper's
 * accelerator gets from its AND-gate weight loader is realized on the CPU
 * too. The operand is additionally bucketed by kept-column pattern
 * (core::CompressedLayer::packGroupedRows) so rows sharing an N:M mask
 * code run through the multi-row kernel, one B-panel load feeding several
 * output channels; `MVQ_SPARSE_MULTIROW=0` restores the single-row walk.
 * `MVQ_FUSED_CONV=0` falls back to the materializing im2col + sparse
 * gemm composition (bit-identical per ISA; see tensor/ops.hpp). Contrast
 * with CompressedModel::applyTo, which densifies the kernel and pays the
 * full dense gemm.
 */

#ifndef MVQ_NN_COMPRESSED_CONV2D_HPP
#define MVQ_NN_COMPRESSED_CONV2D_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/compressed_layer.hpp"
#include "tensor/ops.hpp"

namespace mvq::nn {

/**
 * Forward-only convolution over MVQ-compressed weights. Not an nn::Layer:
 * there is no backward pass and no parameters — this is the deployment
 * path, mirroring how the accelerator consumes the compressed stream.
 */
class CompressedConv2d
{
  public:
    /**
     * Decode `layer`'s mask codes + assignments against `codebook` into
     * the packed sparse operand (split per convolution group).
     *
     * @param stride/pad Convolution geometry (not stored in the
     *        compressed container, which only keeps the kernel shape).
     * @param groups     Channel groups of the original Conv2d; the layer's
     *        weight shape is [K, C/groups, R, S].
     */
    CompressedConv2d(const core::CompressedLayer &layer,
                     const core::Codebook &codebook, std::int64_t stride = 1,
                     std::int64_t pad = 0, std::int64_t groups = 1);

    /**
     * Construct over *injected* pre-packed operands (one
     * GroupedSparseMatrix per conv group) instead of packing here — the
     * serving path: operands come from
     * core::io::ModelArtifact::packedOperands, so N conv instances (and,
     * with an MVQI image, N processes) share one packed operand set and
     * construction does no decode and no pack. The shared_ptr keeps
     * whatever owns the operand bytes (e.g. the mmap'ed image) alive.
     *
     * @param weight_shape Original 4-D kernel shape [K, C/groups, R, S]
     *        (the operands only know the unrolled 2-D geometry).
     */
    CompressedConv2d(
        std::string name, const Shape &weight_shape,
        std::shared_ptr<const std::vector<GroupedSparseMatrix>> operands,
        std::int64_t stride = 1, std::int64_t pad = 0);

    /**
     * NCHW forward through the fused im2col->panel sparse gemm (one gemm
     * per (batch, group) pair, output slabs written in place; the
     * materializing im2col path under `MVQ_FUSED_CONV=0` is
     * bit-identical). Genuinely const (no hidden mutable state), so one
     * instance can serve concurrent forward calls. Output is
     * bit-identical for any `MVQ_NUM_THREADS` within an ISA.
     */
    Tensor forward(const Tensor &x) const;

    const std::string &name() const { return name_; }

    /** Multiply-adds one forward pass over `x` performs (sparse count:
     *  pruned positions cost nothing). */
    std::int64_t flopsFor(const Tensor &x) const;

    /** Kept fraction of the packed operand (N/M for an exact N:M layer). */
    double density() const;

    /** The packed single-row (CSR) operand of one group
     *  (tests/diagnostics). */
    const SparseRowMatrix &
    groupOperand(std::int64_t grp) const
    {
        return (*group_rows_)[static_cast<std::size_t>(grp)].rows;
    }

    /** The bucketed multi-row operand of one group (tests/diagnostics). */
    const GroupedSparseMatrix &
    groupedOperand(std::int64_t grp) const
    {
        return (*group_rows_)[static_cast<std::size_t>(grp)];
    }

    /**
     * This instance's packed operand set, shareable with further
     * instances via the injected-operands constructor (no repack).
     */
    std::shared_ptr<const std::vector<GroupedSparseMatrix>>
    packedOperands() const
    {
        return group_rows_;
    }

  private:
    std::string name_;
    Shape weight_shape_; //!< [K, C/groups, R, S]
    std::int64_t stride_;
    std::int64_t pad_;
    std::int64_t groups_;
    /** One operand per group; shared (never copied) across instances
     *  built from the same artifact or via packedOperands(). */
    std::shared_ptr<const std::vector<GroupedSparseMatrix>> group_rows_;
    std::int64_t nnz_ = 0; //!< kept entries across all groups
};

} // namespace mvq::nn

#endif // MVQ_NN_COMPRESSED_CONV2D_HPP
