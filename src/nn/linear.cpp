#include "nn/linear.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "tensor/ops.hpp"

namespace mvq::nn {

Linear::Linear(std::string name, std::int64_t in_features,
               std::int64_t out_features, Rng &rng, bool bias)
    : name_(std::move(name)),
      inFeatures(in_features),
      outFeatures(out_features),
      hasBias(bias)
{
    Tensor w(Shape({out_features, in_features}));
    const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
    w.fillUniform(rng, -bound, bound);
    weight_ = Parameter(name_ + ".weight", std::move(w));
    if (hasBias)
        bias_ = Parameter(name_ + ".bias", Tensor(Shape({out_features})));
}

Tensor
Linear::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 2, name_, ": expected [N, features] input");
    fatalIf(x.dim(1) != inFeatures,
            name_, ": features ", x.dim(1), " != ", inFeatures);

    Tensor out = matmul(x, weight_.value, false, true); // [N, out]
    if (hasBias) {
        for (std::int64_t n = 0; n < out.dim(0); ++n) {
            for (std::int64_t k = 0; k < outFeatures; ++k)
                out.at(n, k) += bias_.value[k];
        }
    }
    flops_ = x.dim(0) * inFeatures * outFeatures;
    if (train)
        cachedInput = x;
    return out;
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    const Tensor &x = cachedInput;
    fatalIf(x.numel() == 0, name_, ": backward without forward");

    // dW += G^T X, dX = G W
    Tensor gw = matmul(grad_out, x, true, false); // [out, in]
    addInPlace(weight_.grad, gw);
    if (hasBias) {
        for (std::int64_t n = 0; n < grad_out.dim(0); ++n) {
            for (std::int64_t k = 0; k < outFeatures; ++k)
                bias_.grad[k] += grad_out.at(n, k);
        }
    }
    return matmul(grad_out, weight_.value); // [N, in]
}

std::vector<Parameter *>
Linear::parameters()
{
    std::vector<Parameter *> ps{&weight_};
    if (hasBias)
        ps.push_back(&bias_);
    return ps;
}

} // namespace mvq::nn
