/**
 * @file
 * Pooling layers: max pooling, average pooling, global average pooling.
 */

#ifndef MVQ_NN_POOLING_HPP
#define MVQ_NN_POOLING_HPP

#include "nn/layer.hpp"

namespace mvq::nn {

/** Max pooling over square windows. */
class MaxPool2d : public Layer
{
  public:
    MaxPool2d(std::string name, std::int64_t kernel_size,
              std::int64_t stride_size, std::int64_t pad_size = 0)
        : name_(std::move(name)), kernel(kernel_size), stride(stride_size),
          pad(pad_size)
    {
    }

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    std::int64_t kernel;
    std::int64_t stride;
    std::int64_t pad;
    Shape cachedInShape;
    std::vector<std::int64_t> argmax; //!< winning flat input index per output
};

/** Average pooling over square windows (no padding). */
class AvgPool2d : public Layer
{
  public:
    AvgPool2d(std::string name, std::int64_t kernel_size,
              std::int64_t stride_size)
        : name_(std::move(name)), kernel(kernel_size), stride(stride_size)
    {
    }

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    std::int64_t kernel;
    std::int64_t stride;
    Shape cachedInShape;
};

/** Global average pooling: NCHW -> [N, C]. */
class GlobalAvgPool : public Layer
{
  public:
    explicit GlobalAvgPool(std::string name) : name_(std::move(name)) {}

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    Shape cachedInShape;
};

} // namespace mvq::nn

#endif // MVQ_NN_POOLING_HPP
