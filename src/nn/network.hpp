/**
 * @file
 * Sequential network container. Owns an ordered list of layers and runs
 * forward/backward through them.
 */

#ifndef MVQ_NN_NETWORK_HPP
#define MVQ_NN_NETWORK_HPP

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace mvq::nn {

class Conv2d;

/** Ordered layer container; itself a Layer so it nests. */
class Sequential : public Layer
{
  public:
    explicit Sequential(std::string name) : name_(std::move(name)) {}

    /** Append a layer; returns a typed handle for convenience. */
    template <typename L, typename... Args>
    L *
    add(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L *raw = layer.get();
        layers.push_back(std::move(layer));
        return raw;
    }

    /** Append an already-constructed layer. */
    Layer *addLayer(LayerPtr layer);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Layer *> children() override;
    std::string name() const override { return name_; }
    std::int64_t flops() const override;

    std::size_t size() const { return layers.size(); }

  private:
    std::string name_;
    std::vector<LayerPtr> layers;
};

/** All Conv2d layers in a network, in forward order. */
std::vector<Conv2d *> convLayers(Layer &root);

/** Total parameter element count. */
std::int64_t parameterCount(Layer &root);

/** Sum of layer flops() over the most recent forward pass. */
std::int64_t networkFlops(Layer &root);

/**
 * Snapshot all parameter values (used to train once and then restore the
 * same starting point for each compression method under comparison).
 */
std::vector<Tensor> snapshotParameters(Layer &root);

/** Restore a snapshot taken from the same (structurally equal) model. */
void restoreParameters(Layer &root, const std::vector<Tensor> &snapshot);

} // namespace mvq::nn

#endif // MVQ_NN_NETWORK_HPP
