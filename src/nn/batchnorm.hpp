/**
 * @file
 * 2-D batch normalization with running statistics.
 */

#ifndef MVQ_NN_BATCHNORM_HPP
#define MVQ_NN_BATCHNORM_HPP

#include "nn/layer.hpp"

namespace mvq::nn {

/** BatchNorm over NCHW activations, per-channel affine. */
class BatchNorm2d : public Layer
{
  public:
    /**
     * @param name     Stable layer name.
     * @param channels Number of channels normalized independently.
     * @param momentum Running-stat update rate (PyTorch convention).
     */
    BatchNorm2d(std::string name, std::int64_t channels,
                float momentum = 0.1f, float eps = 1e-5f);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;
    std::string name() const override { return name_; }

    /** Per-channel scale (gamma). */
    Parameter &gamma() { return gamma_; }
    /** Per-channel shift (beta). */
    Parameter &beta() { return beta_; }

  private:
    std::string name_;
    std::int64_t channels;
    float momentum;
    float eps;
    Parameter gamma_;
    Parameter beta_;
    Tensor runningMean;
    Tensor runningVar;
    // Caches for backward.
    Tensor cachedXhat;
    std::vector<float> cachedInvStd;
};

} // namespace mvq::nn

#endif // MVQ_NN_BATCHNORM_HPP
