#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace mvq::nn {

namespace {

/** Per-group [kg, wcols] views of the weight tensor, shared read-only by
 *  the batch loops of forward and backward. */
std::vector<Tensor>
packGroupWeights(const Tensor &weight, std::int64_t groups,
                 std::int64_t kg, std::int64_t wcols)
{
    std::vector<Tensor> wmats(static_cast<std::size_t>(groups));
    for (std::int64_t grp = 0; grp < groups; ++grp) {
        Tensor wmat(Shape({kg, wcols}));
        std::memcpy(wmat.data(), weight.data() + grp * kg * wcols,
                    static_cast<std::size_t>(kg * wcols) * sizeof(float));
        wmats[static_cast<std::size_t>(grp)] = std::move(wmat);
    }
    return wmats;
}

} // namespace

Conv2d::Conv2d(std::string name, const Conv2dConfig &cfg, Rng &rng)
    : name_(std::move(name)), cfg_(cfg)
{
    fatalIf(cfg_.in_channels % cfg_.groups != 0,
            name_, ": in_channels not divisible by groups");
    fatalIf(cfg_.out_channels % cfg_.groups != 0,
            name_, ": out_channels not divisible by groups");

    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    Tensor w(Shape({cfg_.out_channels, cg, cfg_.kernel, cfg_.kernel}));
    // Kaiming-uniform with fan-in = cg * k * k.
    const float fan_in =
        static_cast<float>(cg * cfg_.kernel * cfg_.kernel);
    const float bound = std::sqrt(6.0f / fan_in);
    w.fillUniform(rng, -bound, bound);
    weight_ = Parameter(name_ + ".weight", std::move(w));

    if (cfg_.bias)
        bias_ = Parameter(name_ + ".bias", Tensor(Shape({cfg_.out_channels})));
}

Tensor
Conv2d::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    fatalIf(x.dim(1) != cfg_.in_channels,
            name_, ": input channels ", x.dim(1), " != ", cfg_.in_channels);

    const std::int64_t batch = x.dim(0);
    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    const std::int64_t kg = cfg_.out_channels / cfg_.groups;
    ConvGeom g{cg, x.dim(2), x.dim(3), cfg_.kernel, cfg_.kernel,
               cfg_.stride, cfg_.pad};
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    fatalIf(oh <= 0 || ow <= 0, name_, ": empty output feature map");

    Tensor out(Shape({batch, cfg_.out_channels, oh, ow}));

    const std::int64_t wcols = cg * cfg_.kernel * cfg_.kernel;
    std::vector<Tensor> wmats =
        packGroupWeights(weight_.value, cfg_.groups, kg, wcols);

    // Each (batch, group) pair fills a disjoint slab of out. When there
    // are fewer pairs than threads, run the outer loop serially so the
    // inner im2col/gemm can use the whole pool instead of being forced
    // inline; either way each pair's result is bit-identical.
    const std::int64_t work = batch * cfg_.groups;
    auto run_pair = [&](std::int64_t w) {
        const std::int64_t n = w / cfg_.groups;
        const std::int64_t grp = w % cfg_.groups;
        Tensor cols = im2col(x, n, g, grp * cg);
        Tensor res = matmul(wmats[static_cast<std::size_t>(grp)],
                            cols); // [kg, oh*ow]
        float *po = out.data()
            + ((n * cfg_.out_channels + grp * kg) * oh * ow);
        std::memcpy(po, res.data(),
                    static_cast<std::size_t>(kg * oh * ow)
                        * sizeof(float));
    };
    if (work < numThreads()) {
        for (std::int64_t w = 0; w < work; ++w)
            run_pair(w);
    } else {
        parallelFor(0, work, 1, [&](std::int64_t wb, std::int64_t we) {
            for (std::int64_t w = wb; w < we; ++w)
                run_pair(w);
        });
    }

    if (cfg_.bias) {
        parallelFor(0, batch * cfg_.out_channels, 8,
                    [&](std::int64_t kb, std::int64_t ke) {
            for (std::int64_t nk = kb; nk < ke; ++nk) {
                const float b = bias_.value[nk % cfg_.out_channels];
                float *po = out.data() + nk * oh * ow;
                for (std::int64_t i = 0; i < oh * ow; ++i)
                    po[i] += b;
            }
        });
    }

    flops_ = batch * cfg_.out_channels * oh * ow * wcols;
    if (train)
        cachedInput = x;
    return out;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    const Tensor &x = cachedInput;
    fatalIf(x.numel() == 0, name_, ": backward without forward");

    const std::int64_t batch = x.dim(0);
    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    const std::int64_t kg = cfg_.out_channels / cfg_.groups;
    ConvGeom g{cg, x.dim(2), x.dim(3), cfg_.kernel, cfg_.kernel,
               cfg_.stride, cfg_.pad};
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const std::int64_t wcols = cg * cfg_.kernel * cfg_.kernel;

    Tensor grad_in(x.shape());

    std::vector<Tensor> wmats =
        packGroupWeights(weight_.value, cfg_.groups, kg, wcols);

    // The (batch, group) pairs write disjoint slabs of grad_in, but all
    // accumulate into the shared weight gradient, so each chunk collects
    // its own partial dW; the partials fold together in chunk order below,
    // keeping the sum identical for any thread count. The chunk count is
    // capped at a fixed constant (not the thread count, which would break
    // determinism) so transient memory stays at <= 16 weight-grad copies
    // however large the batch is.
    const std::int64_t work = batch * cfg_.groups;
    const std::int64_t grain = std::max<std::int64_t>(1, (work + 15) / 16);
    const std::int64_t nchunks = chunkCount(0, work, grain);
    std::vector<Tensor> wgrad_partial(static_cast<std::size_t>(nchunks));
    auto run_chunk = [&](std::int64_t chunk, std::int64_t wb,
                         std::int64_t we) {
        Tensor dw(weight_.grad.shape());
        for (std::int64_t w = wb; w < we; ++w) {
            const std::int64_t n = w / cfg_.groups;
            const std::int64_t grp = w % cfg_.groups;
            Tensor cols = im2col(x, n, g, grp * cg);

            // Gradient slab for this group as a [kg, oh*ow] matrix.
            Tensor gmat(Shape({kg, oh * ow}));
            std::memcpy(gmat.data(),
                        grad_out.data()
                            + ((n * cfg_.out_channels + grp * kg) * oh
                               * ow),
                        static_cast<std::size_t>(kg * oh * ow)
                            * sizeof(float));

            // dW += G * cols^T
            Tensor gw = matmul(gmat, cols, false, true); // [kg, wcols]
            float *pwg = dw.data() + grp * kg * wcols;
            const float *pg = gw.data();
            for (std::int64_t i = 0; i < kg * wcols; ++i)
                pwg[i] += pg[i];

            // dCols = W^T * G, scatter back to input gradient.
            Tensor gcols = matmul(wmats[static_cast<std::size_t>(grp)],
                                  gmat, true, false); // [wcols, oh*ow]
            col2im(gcols, grad_in, n, g, grp * cg);
        }
        wgrad_partial[static_cast<std::size_t>(chunk)] = std::move(dw);
    };
    // Same small-batch rule as forward: hand the pool to the inner
    // kernels when the outer loop cannot fill it. The chunk partition is
    // identical either way, so the fold below is unchanged.
    if (work < numThreads()) {
        for (std::int64_t chunk = 0; chunk < nchunks; ++chunk)
            run_chunk(chunk, chunk * grain,
                      std::min(work, (chunk + 1) * grain));
    } else {
        parallelForChunks(0, work, grain, run_chunk);
    }
    for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
        const Tensor &dw = wgrad_partial[static_cast<std::size_t>(chunk)];
        float *pwg = weight_.grad.data();
        for (std::int64_t i = 0; i < weight_.grad.numel(); ++i)
            pwg[i] += dw[i];
    }

    if (cfg_.bias) {
        // Serial over channels: batch-major accumulation keeps the order
        // the seed used, and the work is tiny.
        for (std::int64_t n = 0; n < batch; ++n) {
            for (std::int64_t k = 0; k < cfg_.out_channels; ++k) {
                const float *pg = grad_out.data()
                    + (n * cfg_.out_channels + k) * oh * ow;
                float s = 0.0f;
                for (std::int64_t i = 0; i < oh * ow; ++i)
                    s += pg[i];
                bias_.grad[k] += s;
            }
        }
    }

    return grad_in;
}

std::vector<Parameter *>
Conv2d::parameters()
{
    std::vector<Parameter *> ps{&weight_};
    if (cfg_.bias)
        ps.push_back(&bias_);
    return ps;
}

void
Conv2d::setWeight(const Tensor &w)
{
    fatalIf(w.shape() != weight_.value.shape(),
            name_, ": setWeight shape mismatch ", w.shape().str());
    weight_.value = w;
}

} // namespace mvq::nn
