#include "nn/conv2d.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mvq::nn {

namespace {

/** im2col over a channel slice [c0, c0 + geom.in_c) of the input. */
Tensor
im2colSlice(const Tensor &input, std::int64_t n, std::int64_t c0,
            const ConvGeom &g)
{
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    Tensor cols(Shape({g.in_c * g.k_h * g.k_w, oh * ow}));
    float *pc = cols.data();

    std::int64_t row = 0;
    for (std::int64_t c = 0; c < g.in_c; ++c) {
        for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
            for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
                float *dst = pc + row * oh * ow;
                for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t ih = y * g.stride - g.pad + kh;
                    for (std::int64_t x = 0; x < ow; ++x) {
                        const std::int64_t iw = x * g.stride - g.pad + kw;
                        float v = 0.0f;
                        if (ih >= 0 && ih < g.in_h && iw >= 0 && iw < g.in_w)
                            v = input.at(n, c0 + c, ih, iw);
                        dst[y * ow + x] = v;
                    }
                }
            }
        }
    }
    return cols;
}

/** Scatter-add columns into the channel slice [c0, ...) of grad. */
void
col2imSlice(const Tensor &cols, Tensor &grad, std::int64_t n,
            std::int64_t c0, const ConvGeom &g)
{
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const float *pc = cols.data();
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < g.in_c; ++c) {
        for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
            for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
                const float *src = pc + row * oh * ow;
                for (std::int64_t y = 0; y < oh; ++y) {
                    const std::int64_t ih = y * g.stride - g.pad + kh;
                    if (ih < 0 || ih >= g.in_h)
                        continue;
                    for (std::int64_t x = 0; x < ow; ++x) {
                        const std::int64_t iw = x * g.stride - g.pad + kw;
                        if (iw < 0 || iw >= g.in_w)
                            continue;
                        grad.at(n, c0 + c, ih, iw) += src[y * ow + x];
                    }
                }
            }
        }
    }
}

} // namespace

Conv2d::Conv2d(std::string name, const Conv2dConfig &cfg, Rng &rng)
    : name_(std::move(name)), cfg_(cfg)
{
    fatalIf(cfg_.in_channels % cfg_.groups != 0,
            name_, ": in_channels not divisible by groups");
    fatalIf(cfg_.out_channels % cfg_.groups != 0,
            name_, ": out_channels not divisible by groups");

    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    Tensor w(Shape({cfg_.out_channels, cg, cfg_.kernel, cfg_.kernel}));
    // Kaiming-uniform with fan-in = cg * k * k.
    const float fan_in =
        static_cast<float>(cg * cfg_.kernel * cfg_.kernel);
    const float bound = std::sqrt(6.0f / fan_in);
    w.fillUniform(rng, -bound, bound);
    weight_ = Parameter(name_ + ".weight", std::move(w));

    if (cfg_.bias)
        bias_ = Parameter(name_ + ".bias", Tensor(Shape({cfg_.out_channels})));
}

Tensor
Conv2d::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    fatalIf(x.dim(1) != cfg_.in_channels,
            name_, ": input channels ", x.dim(1), " != ", cfg_.in_channels);

    const std::int64_t batch = x.dim(0);
    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    const std::int64_t kg = cfg_.out_channels / cfg_.groups;
    ConvGeom g{cg, x.dim(2), x.dim(3), cfg_.kernel, cfg_.kernel,
               cfg_.stride, cfg_.pad};
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    fatalIf(oh <= 0 || ow <= 0, name_, ": empty output feature map");

    Tensor out(Shape({batch, cfg_.out_channels, oh, ow}));

    // Weight viewed per group as a [kg, cg*k*k] matrix.
    const std::int64_t wcols = cg * cfg_.kernel * cfg_.kernel;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t grp = 0; grp < cfg_.groups; ++grp) {
            Tensor cols = im2colSlice(x, n, grp * cg, g);
            Tensor wmat(Shape({kg, wcols}));
            const float *pw = weight_.value.data() + grp * kg * wcols;
            for (std::int64_t i = 0; i < kg * wcols; ++i)
                wmat[i] = pw[i];
            Tensor res = matmul(wmat, cols); // [kg, oh*ow]
            float *po = out.data()
                + ((n * cfg_.out_channels + grp * kg) * oh * ow);
            for (std::int64_t i = 0; i < kg * oh * ow; ++i)
                po[i] = res[i];
        }
    }

    if (cfg_.bias) {
        for (std::int64_t n = 0; n < batch; ++n) {
            for (std::int64_t k = 0; k < cfg_.out_channels; ++k) {
                const float b = bias_.value[k];
                for (std::int64_t i = 0; i < oh * ow; ++i)
                    out.data()[(n * cfg_.out_channels + k) * oh * ow + i] += b;
            }
        }
    }

    flops_ = batch * cfg_.out_channels * oh * ow * wcols;
    if (train)
        cachedInput = x;
    return out;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    const Tensor &x = cachedInput;
    fatalIf(x.numel() == 0, name_, ": backward without forward");

    const std::int64_t batch = x.dim(0);
    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    const std::int64_t kg = cfg_.out_channels / cfg_.groups;
    ConvGeom g{cg, x.dim(2), x.dim(3), cfg_.kernel, cfg_.kernel,
               cfg_.stride, cfg_.pad};
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const std::int64_t wcols = cg * cfg_.kernel * cfg_.kernel;

    Tensor grad_in(x.shape());

    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t grp = 0; grp < cfg_.groups; ++grp) {
            Tensor cols = im2colSlice(x, n, grp * cg, g);

            // Gradient slab for this group as a [kg, oh*ow] matrix.
            Tensor gmat(Shape({kg, oh * ow}));
            const float *pg = grad_out.data()
                + ((n * cfg_.out_channels + grp * kg) * oh * ow);
            for (std::int64_t i = 0; i < kg * oh * ow; ++i)
                gmat[i] = pg[i];

            // dW += G * cols^T
            Tensor gw = matmul(gmat, cols, false, true); // [kg, wcols]
            float *pwg = weight_.grad.data() + grp * kg * wcols;
            for (std::int64_t i = 0; i < kg * wcols; ++i)
                pwg[i] += gw[i];

            // dCols = W^T * G, scatter back to input gradient.
            Tensor wmat(Shape({kg, wcols}));
            const float *pw = weight_.value.data() + grp * kg * wcols;
            for (std::int64_t i = 0; i < kg * wcols; ++i)
                wmat[i] = pw[i];
            Tensor gcols = matmul(wmat, gmat, true, false); // [wcols, oh*ow]
            col2imSlice(gcols, grad_in, n, grp * cg, g);
        }
    }

    if (cfg_.bias) {
        for (std::int64_t n = 0; n < batch; ++n) {
            for (std::int64_t k = 0; k < cfg_.out_channels; ++k) {
                const float *pg = grad_out.data()
                    + (n * cfg_.out_channels + k) * oh * ow;
                float s = 0.0f;
                for (std::int64_t i = 0; i < oh * ow; ++i)
                    s += pg[i];
                bias_.grad[k] += s;
            }
        }
    }

    return grad_in;
}

std::vector<Parameter *>
Conv2d::parameters()
{
    std::vector<Parameter *> ps{&weight_};
    if (cfg_.bias)
        ps.push_back(&bias_);
    return ps;
}

void
Conv2d::setWeight(const Tensor &w)
{
    fatalIf(w.shape() != weight_.value.shape(),
            name_, ": setWeight shape mismatch ", w.shape().str());
    weight_.value = w;
}

} // namespace mvq::nn
