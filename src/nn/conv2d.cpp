#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hpp"
#include "common/parallel.hpp"

namespace mvq::nn {

// Group grp of the [K, C/groups, R, S] weight tensor is a contiguous
// [kg, wcols] slab (kg = K/groups rows of wcols = (C/groups)*R*S), and a
// (batch, group) block of an NCHW activation covers kg contiguous
// channel planes — so both sides of every conv gemm are plain pointer
// views and the raw-pointer gemm entry points write results in place.
// The seed packed per-group weight copies and memcpy'd each gemm result
// into the output slab; both copies are gone.

Conv2d::Conv2d(std::string name, const Conv2dConfig &cfg, Rng &rng)
    : name_(std::move(name)), cfg_(cfg)
{
    fatalIf(cfg_.in_channels % cfg_.groups != 0,
            name_, ": in_channels not divisible by groups");
    fatalIf(cfg_.out_channels % cfg_.groups != 0,
            name_, ": out_channels not divisible by groups");

    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    Tensor w(Shape({cfg_.out_channels, cg, cfg_.kernel, cfg_.kernel}));
    // Kaiming-uniform with fan-in = cg * k * k.
    const float fan_in =
        static_cast<float>(cg * cfg_.kernel * cfg_.kernel);
    const float bound = std::sqrt(6.0f / fan_in);
    w.fillUniform(rng, -bound, bound);
    weight_ = Parameter(name_ + ".weight", std::move(w));

    if (cfg_.bias)
        bias_ = Parameter(name_ + ".bias", Tensor(Shape({cfg_.out_channels})));
}

Tensor
Conv2d::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 4, name_, ": expected NCHW input");
    fatalIf(x.dim(1) != cfg_.in_channels,
            name_, ": input channels ", x.dim(1), " != ", cfg_.in_channels);

    const std::int64_t batch = x.dim(0);
    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    const std::int64_t kg = cfg_.out_channels / cfg_.groups;
    ConvGeom g{cg, x.dim(2), x.dim(3), cfg_.kernel, cfg_.kernel,
               cfg_.stride, cfg_.pad};
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    fatalIf(oh <= 0 || ow <= 0, name_, ": empty output feature map");

    Tensor out(Shape({batch, cfg_.out_channels, oh, ow}));

    const std::int64_t wcols = cg * cfg_.kernel * cfg_.kernel;
    const float *pw = weight_.value.data();

    // Each (batch, group) pair fills a disjoint slab of out. When there
    // are fewer pairs than threads, run the outer loop serially so the
    // inner im2col/gemm can use the whole pool instead of being forced
    // inline; either way each pair's result is bit-identical.
    //
    // The fused path (default) hands the gemm the (batch, group) input
    // slab as a geometry-described B operand so patches pack straight
    // into B panels; MVQ_FUSED_CONV=0 restores the materializing im2col
    // path. Both are bit-identical (see gemmIm2colRaw), so the knob is a
    // perf A/B switch, not a numerics one.
    const bool fused = fusedConvEnabled();
    const std::int64_t work = batch * cfg_.groups;
    auto run_pair = [&](std::int64_t w) {
        const std::int64_t n = w / cfg_.groups;
        const std::int64_t grp = w % cfg_.groups;
        // out slab = W_grp * cols, written in place (beta = 0).
        float *po = out.data()
            + ((n * cfg_.out_channels + grp * kg) * oh * ow);
        if (fused) {
            const float *slab = x.data()
                + (n * cfg_.in_channels + grp * cg) * g.in_h * g.in_w;
            gemmIm2colRaw(kg, 1.0f, pw + grp * kg * wcols, wcols,
                          Im2colB{slab, g}, 0.0f, po, oh * ow);
        } else {
            Tensor cols = im2col(x, n, g, grp * cg);
            gemmRaw(kg, oh * ow, wcols, 1.0f, pw + grp * kg * wcols, wcols,
                    false, cols.data(), oh * ow, false, 0.0f, po, oh * ow);
        }
    };
    if (work < numThreads()) {
        for (std::int64_t w = 0; w < work; ++w)
            run_pair(w);
    } else {
        parallelFor(0, work, 1, [&](std::int64_t wb, std::int64_t we) {
            for (std::int64_t w = wb; w < we; ++w)
                run_pair(w);
        });
    }

    if (cfg_.bias) {
        parallelFor(0, batch * cfg_.out_channels, 8,
                    [&](std::int64_t kb, std::int64_t ke) {
            for (std::int64_t nk = kb; nk < ke; ++nk) {
                const float b = bias_.value[nk % cfg_.out_channels];
                float *po = out.data() + nk * oh * ow;
                for (std::int64_t i = 0; i < oh * ow; ++i)
                    po[i] += b;
            }
        });
    }

    flops_ = batch * cfg_.out_channels * oh * ow * wcols;
    if (train)
        cachedInput = x;
    return out;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    const Tensor &x = cachedInput;
    fatalIf(x.numel() == 0, name_, ": backward without forward");

    const std::int64_t batch = x.dim(0);
    const std::int64_t cg = cfg_.in_channels / cfg_.groups;
    const std::int64_t kg = cfg_.out_channels / cfg_.groups;
    ConvGeom g{cg, x.dim(2), x.dim(3), cfg_.kernel, cfg_.kernel,
               cfg_.stride, cfg_.pad};
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const std::int64_t wcols = cg * cfg_.kernel * cfg_.kernel;

    Tensor grad_in(x.shape());

    const float *pw = weight_.value.data();

    // The (batch, group) pairs write disjoint slabs of grad_in, but all
    // accumulate into the shared weight gradient, so each chunk collects
    // its own partial dW; the partials fold together in chunk order below,
    // keeping the sum identical for any thread count. The chunk count is
    // capped at a fixed constant (not the thread count, which would break
    // determinism) so transient memory stays at <= 16 weight-grad copies
    // however large the batch is.
    const std::int64_t work = batch * cfg_.groups;
    const std::int64_t grain = std::max<std::int64_t>(1, (work + 15) / 16);
    const std::int64_t nchunks = chunkCount(0, work, grain);
    std::vector<Tensor> wgrad_partial(static_cast<std::size_t>(nchunks));
    auto run_chunk = [&](std::int64_t chunk, std::int64_t wb,
                         std::int64_t we) {
        Tensor dw(weight_.grad.shape());
        Tensor gcols(Shape({wcols, oh * ow}));
        for (std::int64_t w = wb; w < we; ++w) {
            const std::int64_t n = w / cfg_.groups;
            const std::int64_t grp = w % cfg_.groups;
            Tensor cols = im2col(x, n, g, grp * cg);

            // Gradient slab for this group, viewed as [kg, oh*ow].
            const float *pg = grad_out.data()
                + ((n * cfg_.out_channels + grp * kg) * oh * ow);

            // dW slab += G * cols^T, accumulated in place (beta = 1).
            gemmRaw(kg, wcols, oh * ow, 1.0f, pg, oh * ow, false,
                    cols.data(), oh * ow, true, 1.0f,
                    dw.data() + grp * kg * wcols, wcols);

            // dCols = W_grp^T * G, scatter back to input gradient.
            gemmRaw(wcols, oh * ow, kg, 1.0f, pw + grp * kg * wcols,
                    wcols, true, pg, oh * ow, false, 0.0f, gcols.data(),
                    oh * ow);
            col2im(gcols, grad_in, n, g, grp * cg);
        }
        wgrad_partial[static_cast<std::size_t>(chunk)] = std::move(dw);
    };
    // Same small-batch rule as forward: hand the pool to the inner
    // kernels when the outer loop cannot fill it. The chunk partition is
    // identical either way, so the fold below is unchanged.
    if (work < numThreads()) {
        for (std::int64_t chunk = 0; chunk < nchunks; ++chunk)
            run_chunk(chunk, chunk * grain,
                      std::min(work, (chunk + 1) * grain));
    } else {
        parallelForChunks(0, work, grain, run_chunk);
    }
    for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
        const Tensor &dw = wgrad_partial[static_cast<std::size_t>(chunk)];
        float *pwg = weight_.grad.data();
        for (std::int64_t i = 0; i < weight_.grad.numel(); ++i)
            pwg[i] += dw[i];
    }

    if (cfg_.bias) {
        // Serial over channels: batch-major accumulation keeps the order
        // the seed used, and the work is tiny.
        for (std::int64_t n = 0; n < batch; ++n) {
            for (std::int64_t k = 0; k < cfg_.out_channels; ++k) {
                const float *pg = grad_out.data()
                    + (n * cfg_.out_channels + k) * oh * ow;
                float s = 0.0f;
                for (std::int64_t i = 0; i < oh * ow; ++i)
                    s += pg[i];
                bias_.grad[k] += s;
            }
        }
    }

    return grad_in;
}

std::vector<Parameter *>
Conv2d::parameters()
{
    std::vector<Parameter *> ps{&weight_};
    if (cfg_.bias)
        ps.push_back(&bias_);
    return ps;
}

void
Conv2d::setWeight(const Tensor &w)
{
    fatalIf(w.shape() != weight_.value.shape(),
            name_, ": setWeight shape mismatch ", w.shape().str());
    weight_.value = w;
}

} // namespace mvq::nn
