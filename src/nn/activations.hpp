/**
 * @file
 * Pointwise activation layers.
 */

#ifndef MVQ_NN_ACTIVATIONS_HPP
#define MVQ_NN_ACTIVATIONS_HPP

#include "nn/layer.hpp"

namespace mvq::nn {

/** Rectified linear unit, optionally clipped at 6 (ReLU6). */
class ReLU : public Layer
{
  public:
    /**
     * @param clip_at_6 Use the ReLU6 variant (MobileNet convention).
     */
    explicit ReLU(std::string name, bool clip_at_6 = false)
        : name_(std::move(name)), clip6(clip_at_6)
    {
    }

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    bool clip6;
    Tensor cachedInput;
};

} // namespace mvq::nn

#endif // MVQ_NN_ACTIVATIONS_HPP
