#include "nn/loss.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mvq::nn {

LossResult
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    fatalIf(logits.rank() != 2, "softmaxCrossEntropy expects [N, classes]");
    const std::int64_t n = logits.dim(0);
    const std::int64_t c = logits.dim(1);
    fatalIf(static_cast<std::int64_t>(labels.size()) != n,
            "label count mismatch");

    LossResult res;
    res.grad = Tensor(logits.shape());
    double total = 0.0;
    const float invn = 1.0f / static_cast<float>(n);

    for (std::int64_t i = 0; i < n; ++i) {
        const int label = labels[static_cast<std::size_t>(i)];
        fatalIf(label < 0 || label >= c, "label ", label, " out of range");
        float maxv = logits.at(i, 0);
        for (std::int64_t j = 1; j < c; ++j)
            maxv = std::max(maxv, logits.at(i, j));
        double denom = 0.0;
        for (std::int64_t j = 0; j < c; ++j)
            denom += std::exp(static_cast<double>(logits.at(i, j) - maxv));
        const double logz = std::log(denom) + maxv;
        total += logz - logits.at(i, label);
        for (std::int64_t j = 0; j < c; ++j) {
            const double p =
                std::exp(static_cast<double>(logits.at(i, j) - maxv)) / denom;
            res.grad.at(i, j) =
                (static_cast<float>(p) - (j == label ? 1.0f : 0.0f)) * invn;
        }
    }
    res.loss = total / static_cast<double>(n);
    return res;
}

LossResult
pixelwiseCrossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    fatalIf(logits.rank() != 4, "pixelwiseCrossEntropy expects NCHW");
    const std::int64_t n = logits.dim(0);
    const std::int64_t c = logits.dim(1);
    const std::int64_t h = logits.dim(2);
    const std::int64_t w = logits.dim(3);
    fatalIf(static_cast<std::int64_t>(labels.size()) != n * h * w,
            "pixel label count mismatch");

    LossResult res;
    res.grad = Tensor(logits.shape());
    double total = 0.0;
    const float inv = 1.0f / static_cast<float>(n * h * w);

    std::size_t li = 0;
    for (std::int64_t b = 0; b < n; ++b) {
        for (std::int64_t y = 0; y < h; ++y) {
            for (std::int64_t x = 0; x < w; ++x, ++li) {
                const int label = labels[li];
                fatalIf(label < 0 || label >= c,
                        "pixel label out of range");
                float maxv = logits.at(b, 0, y, x);
                for (std::int64_t j = 1; j < c; ++j)
                    maxv = std::max(maxv, logits.at(b, j, y, x));
                double denom = 0.0;
                for (std::int64_t j = 0; j < c; ++j) {
                    denom += std::exp(
                        static_cast<double>(logits.at(b, j, y, x) - maxv));
                }
                total += std::log(denom) + maxv - logits.at(b, label, y, x);
                for (std::int64_t j = 0; j < c; ++j) {
                    const double p = std::exp(static_cast<double>(
                        logits.at(b, j, y, x) - maxv)) / denom;
                    res.grad.at(b, j, y, x) =
                        (static_cast<float>(p)
                         - (j == label ? 1.0f : 0.0f)) * inv;
                }
            }
        }
    }
    res.loss = total / static_cast<double>(n * h * w);
    return res;
}

LossResult
mseLoss(const Tensor &pred, const Tensor &target)
{
    fatalIf(pred.shape() != target.shape(), "mseLoss shape mismatch");
    LossResult res;
    res.grad = Tensor(pred.shape());
    const std::int64_t n = pred.numel();
    double total = 0.0;
    const float scale = 2.0f / static_cast<float>(n);
    for (std::int64_t i = 0; i < n; ++i) {
        const double d =
            static_cast<double>(pred[i]) - static_cast<double>(target[i]);
        total += d * d;
        res.grad[i] = scale * static_cast<float>(d);
    }
    res.loss = total / static_cast<double>(n);
    return res;
}

std::vector<int>
argmaxRows(const Tensor &logits)
{
    fatalIf(logits.rank() != 2, "argmaxRows expects [N, classes]");
    std::vector<int> out(static_cast<std::size_t>(logits.dim(0)));
    for (std::int64_t i = 0; i < logits.dim(0); ++i) {
        int best = 0;
        for (std::int64_t j = 1; j < logits.dim(1); ++j) {
            if (logits.at(i, j) > logits.at(i, best))
                best = static_cast<int>(j);
        }
        out[static_cast<std::size_t>(i)] = best;
    }
    return out;
}

double
top1Accuracy(const Tensor &logits, const std::vector<int> &labels)
{
    const std::vector<int> pred = argmaxRows(logits);
    fatalIf(pred.size() != labels.size(), "accuracy label count mismatch");
    std::size_t hit = 0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
        if (pred[i] == labels[i])
            ++hit;
    }
    return 100.0 * static_cast<double>(hit)
        / static_cast<double>(pred.size());
}

} // namespace mvq::nn
