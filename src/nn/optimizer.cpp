#include "nn/optimizer.hpp"

#include <cmath>

namespace mvq::nn {

void
Sgd::step(const std::vector<Parameter *> &params)
{
    for (Parameter *p : params) {
        auto &vel = velocity[p];
        const std::size_t n = static_cast<std::size_t>(p->value.numel());
        if (vel.size() != n)
            vel.assign(n, 0.0f);
        float *w = p->value.data();
        const float *g = p->grad.data();
        for (std::size_t i = 0; i < n; ++i) {
            float gi = g[i] + weightDecay * w[i];
            vel[i] = momentum * vel[i] + gi;
            w[i] -= lr * vel[i];
        }
    }
}

void
Adam::step(const std::vector<Parameter *> &params)
{
    for (Parameter *p : params) {
        Moments &mom = state[p];
        const std::size_t n = static_cast<std::size_t>(p->value.numel());
        if (mom.m.size() != n) {
            mom.m.assign(n, 0.0f);
            mom.v.assign(n, 0.0f);
            mom.t = 0;
        }
        ++mom.t;
        const float bc1 =
            1.0f - std::pow(beta1, static_cast<float>(mom.t));
        const float bc2 =
            1.0f - std::pow(beta2, static_cast<float>(mom.t));
        float *w = p->value.data();
        const float *g = p->grad.data();
        for (std::size_t i = 0; i < n; ++i) {
            float gi = g[i];
            if (!decoupled)
                gi += weightDecay * w[i];
            mom.m[i] = beta1 * mom.m[i] + (1.0f - beta1) * gi;
            mom.v[i] = beta2 * mom.v[i] + (1.0f - beta2) * gi * gi;
            const float mhat = mom.m[i] / bc1;
            const float vhat = mom.v[i] / bc2;
            float upd = mhat / (std::sqrt(vhat) + eps);
            if (decoupled)
                upd += weightDecay * w[i];
            w[i] -= lr * upd;
        }
    }
}

} // namespace mvq::nn
