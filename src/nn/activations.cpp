#include "nn/activations.hpp"

#include "common/logging.hpp"

namespace mvq::nn {

Tensor
ReLU::forward(const Tensor &x, bool train)
{
    Tensor out(x.shape());
    const float hi = clip6 ? 6.0f : 0.0f;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
        float v = x[i] > 0.0f ? x[i] : 0.0f;
        if (clip6 && v > hi)
            v = hi;
        out[i] = v;
    }
    if (train)
        cachedInput = x;
    return out;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    fatalIf(cachedInput.numel() == 0, name_, ": backward without forward");
    Tensor grad_in(grad_out.shape());
    for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
        const float x = cachedInput[i];
        const bool pass = clip6 ? (x > 0.0f && x < 6.0f) : (x > 0.0f);
        grad_in[i] = pass ? grad_out[i] : 0.0f;
    }
    return grad_in;
}

} // namespace mvq::nn
