/**
 * @file
 * Deterministic synthetic datasets. These stand in for ImageNet / COCO /
 * VOC (see DESIGN.md, substitution table): each task is generated from a
 * seeded RNG so every run of every bench sees identical data.
 *
 * Classification: each class has a fixed smooth "prototype" pattern;
 * samples are shifted, scaled, noisy copies. Segmentation: images contain
 * rectangles of class-specific texture over background; labels are dense
 * class maps. Detection proxy: one object per image with a ground-truth
 * box and mask.
 */

#ifndef MVQ_NN_DATASET_HPP
#define MVQ_NN_DATASET_HPP

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvq::nn {

/** One labelled image. */
struct Sample
{
    Tensor image; //!< [C, H, W]
    int label = 0;
};

/** Configuration of the synthetic classification task. */
struct ClassificationConfig
{
    int classes = 10;
    std::int64_t channels = 3;
    std::int64_t size = 12;      //!< square image side
    int train_count = 1536;
    int test_count = 384;
    float noise = 0.35f;
    int max_shift = 2;           //!< circular shift range in pixels
    std::uint64_t seed = 7;
};

/** Pre-generated synthetic classification dataset. */
class ClassificationDataset
{
  public:
    explicit ClassificationDataset(const ClassificationConfig &cfg);

    const ClassificationConfig &config() const { return cfg_; }
    const std::vector<Sample> &trainSet() const { return train_; }
    const std::vector<Sample> &testSet() const { return test_; }

    /** Assemble a NCHW batch from sample indices of a set. */
    Tensor batchImages(const std::vector<Sample> &set,
                       const std::vector<int> &indices) const;

    /** Labels for the same indices. */
    std::vector<int> batchLabels(const std::vector<Sample> &set,
                                 const std::vector<int> &indices) const;

  private:
    ClassificationConfig cfg_;
    std::vector<Tensor> prototypes; //!< one [C, H, W] pattern per class
    std::vector<Sample> train_;
    std::vector<Sample> test_;

    Sample makeSample(Rng &rng, int label) const;
};

/** One segmentation sample: image plus dense label map. */
struct SegSample
{
    Tensor image;            //!< [C, H, W]
    std::vector<int> labels; //!< H*W class ids (0 = background)
};

/** Configuration of the synthetic segmentation task. */
struct SegmentationConfig
{
    int classes = 5;              //!< including background class 0
    std::int64_t channels = 3;
    std::int64_t size = 16;
    int train_count = 768;
    int test_count = 192;
    float noise = 0.3f;
    std::uint64_t seed = 11;
};

/** Pre-generated synthetic segmentation dataset. */
class SegmentationDataset
{
  public:
    explicit SegmentationDataset(const SegmentationConfig &cfg);

    const SegmentationConfig &config() const { return cfg_; }
    const std::vector<SegSample> &trainSet() const { return train_; }
    const std::vector<SegSample> &testSet() const { return test_; }

    Tensor batchImages(const std::vector<SegSample> &set,
                       const std::vector<int> &indices) const;
    std::vector<int> batchLabels(const std::vector<SegSample> &set,
                                 const std::vector<int> &indices) const;

  private:
    SegmentationConfig cfg_;
    std::vector<Tensor> textures; //!< per-class fill texture
    std::vector<SegSample> train_;
    std::vector<SegSample> test_;

    SegSample makeSample(Rng &rng) const;
};

/** Axis-aligned box in pixel units. */
struct Box
{
    float x0 = 0, y0 = 0, x1 = 0, y1 = 0;

    float area() const { return std::max(0.0f, x1 - x0)
        * std::max(0.0f, y1 - y0); }
};

/** Intersection-over-union of two boxes. */
float boxIou(const Box &a, const Box &b);

/** One detection-proxy sample: image, object class, box, binary mask. */
struct DetSample
{
    Tensor image;          //!< [C, H, W]
    int label = 0;
    Box box;
    std::vector<int> mask; //!< H*W, 1 inside the object
};

/** Configuration of the synthetic detection-proxy task. */
struct DetectionConfig
{
    int classes = 5;
    std::int64_t channels = 3;
    std::int64_t size = 16;
    int train_count = 768;
    int test_count = 192;
    float noise = 0.25f;
    std::uint64_t seed = 13;
};

/** Pre-generated synthetic detection dataset. */
class DetectionDataset
{
  public:
    explicit DetectionDataset(const DetectionConfig &cfg);

    const DetectionConfig &config() const { return cfg_; }
    const std::vector<DetSample> &trainSet() const { return train_; }
    const std::vector<DetSample> &testSet() const { return test_; }

    Tensor batchImages(const std::vector<DetSample> &set,
                       const std::vector<int> &indices) const;

  private:
    DetectionConfig cfg_;
    std::vector<Tensor> textures;
    std::vector<DetSample> train_;
    std::vector<DetSample> test_;

    DetSample makeSample(Rng &rng) const;
};

/**
 * Smooth random field: bilinear upsampling of a coarse normal grid.
 * Shared by all three dataset generators.
 */
Tensor smoothField(Rng &rng, std::int64_t channels, std::int64_t size,
                   std::int64_t coarse = 3);

} // namespace mvq::nn

#endif // MVQ_NN_DATASET_HPP
