#include "nn/layer.hpp"

namespace mvq::nn {

void
Layer::zeroGrad()
{
    for (Parameter *p : allParameters())
        p->grad.fill(0.0f);
}

std::vector<Parameter *>
Layer::allParameters()
{
    std::vector<Parameter *> out;
    for (Layer *l : allLayers()) {
        for (Parameter *p : l->parameters())
            out.push_back(p);
    }
    return out;
}

std::vector<Layer *>
Layer::allLayers()
{
    std::vector<Layer *> out;
    out.push_back(this);
    for (Layer *c : children()) {
        for (Layer *l : c->allLayers())
            out.push_back(l);
    }
    return out;
}

} // namespace mvq::nn
