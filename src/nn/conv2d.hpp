/**
 * @file
 * 2-D convolution layer with grouped/depthwise support, implemented with
 * im2col + GEMM. Weight layout is [K, C/groups, R, S] (output channels,
 * input channels per group, kernel height, kernel width).
 */

#ifndef MVQ_NN_CONV2D_HPP
#define MVQ_NN_CONV2D_HPP

#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace mvq::nn {

/** Configuration for a Conv2d layer. */
struct Conv2dConfig
{
    std::int64_t in_channels = 1;
    std::int64_t out_channels = 1;
    std::int64_t kernel = 3;
    std::int64_t stride = 1;
    std::int64_t pad = 0;
    std::int64_t groups = 1;
    bool bias = false;
};

/** Convolution layer; the primary compression target of the MVQ pipeline. */
class Conv2d : public Layer
{
  public:
    /**
     * @param name Stable layer name (used by compression manifests).
     * @param cfg  Geometry; in/out channels must be divisible by groups.
     * @param rng  Initializer stream (Kaiming-uniform fan-in init).
     */
    Conv2d(std::string name, const Conv2dConfig &cfg, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;
    std::string name() const override { return name_; }
    std::int64_t flops() const override { return flops_; }

    const Conv2dConfig &config() const { return cfg_; }

    /** Learnable kernel, shape [K, C/groups, R, S]. */
    Parameter &weight() { return weight_; }
    const Parameter &weight() const { return weight_; }

    /** Optional bias, shape [K]; only valid when config().bias. */
    Parameter &biasParam() { return bias_; }

    /** Replace the kernel values (used by compression / reconstruction). */
    void setWeight(const Tensor &w);

    /** Input cached by the most recent training-mode forward. */
    const Tensor &lastInput() const { return cachedInput; }

  private:
    std::string name_;
    Conv2dConfig cfg_;
    Parameter weight_;
    Parameter bias_;
    Tensor cachedInput;
    std::int64_t flops_ = 0;
};

} // namespace mvq::nn

#endif // MVQ_NN_CONV2D_HPP
