#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace mvq::nn {

Tensor
smoothField(Rng &rng, std::int64_t channels, std::int64_t size,
            std::int64_t coarse)
{
    Tensor field(Shape({channels, size, size}));
    for (std::int64_t c = 0; c < channels; ++c) {
        // Coarse grid of normals, bilinearly upsampled.
        std::vector<float> grid(static_cast<std::size_t>(coarse * coarse));
        for (auto &g : grid)
            g = rng.normal(0.0f, 1.0f);
        for (std::int64_t y = 0; y < size; ++y) {
            const float fy = static_cast<float>(y)
                / static_cast<float>(size - 1)
                * static_cast<float>(coarse - 1);
            const std::int64_t y0 =
                std::min<std::int64_t>(coarse - 2,
                                       static_cast<std::int64_t>(fy));
            const float wy = fy - static_cast<float>(y0);
            for (std::int64_t x = 0; x < size; ++x) {
                const float fx = static_cast<float>(x)
                    / static_cast<float>(size - 1)
                    * static_cast<float>(coarse - 1);
                const std::int64_t x0 =
                    std::min<std::int64_t>(coarse - 2,
                                           static_cast<std::int64_t>(fx));
                const float wx = fx - static_cast<float>(x0);
                auto g = [&](std::int64_t yy, std::int64_t xx) {
                    return grid[static_cast<std::size_t>(yy * coarse + xx)];
                };
                const float v =
                    g(y0, x0) * (1 - wy) * (1 - wx)
                    + g(y0, x0 + 1) * (1 - wy) * wx
                    + g(y0 + 1, x0) * wy * (1 - wx)
                    + g(y0 + 1, x0 + 1) * wy * wx;
                field.data()[(c * size + y) * size + x] = v;
            }
        }
    }
    return field;
}

// --- Classification -------------------------------------------------------

ClassificationDataset::ClassificationDataset(const ClassificationConfig &cfg)
    : cfg_(cfg)
{
    Rng rng(cfg_.seed);
    prototypes.reserve(static_cast<std::size_t>(cfg_.classes));
    for (int c = 0; c < cfg_.classes; ++c)
        prototypes.push_back(smoothField(rng, cfg_.channels, cfg_.size));

    train_.reserve(static_cast<std::size_t>(cfg_.train_count));
    for (int i = 0; i < cfg_.train_count; ++i)
        train_.push_back(makeSample(rng, i % cfg_.classes));
    test_.reserve(static_cast<std::size_t>(cfg_.test_count));
    for (int i = 0; i < cfg_.test_count; ++i)
        test_.push_back(makeSample(rng, i % cfg_.classes));
}

Sample
ClassificationDataset::makeSample(Rng &rng, int label) const
{
    const auto &proto = prototypes[static_cast<std::size_t>(label)];
    const std::int64_t s = cfg_.size;
    const std::int64_t c = cfg_.channels;
    const int dx = static_cast<int>(rng.intIn(-cfg_.max_shift,
                                              cfg_.max_shift));
    const int dy = static_cast<int>(rng.intIn(-cfg_.max_shift,
                                              cfg_.max_shift));
    const float scale = rng.uniform(0.8f, 1.2f);

    Sample smp;
    smp.label = label;
    smp.image = Tensor(Shape({c, s, s}));
    for (std::int64_t ch = 0; ch < c; ++ch) {
        for (std::int64_t y = 0; y < s; ++y) {
            const std::int64_t sy = ((y + dy) % s + s) % s;
            for (std::int64_t x = 0; x < s; ++x) {
                const std::int64_t sx = ((x + dx) % s + s) % s;
                const float v =
                    proto.data()[(ch * s + sy) * s + sx] * scale
                    + rng.normal(0.0f, cfg_.noise);
                smp.image.data()[(ch * s + y) * s + x] = v;
            }
        }
    }
    return smp;
}

Tensor
ClassificationDataset::batchImages(const std::vector<Sample> &set,
                                   const std::vector<int> &indices) const
{
    fatalIf(indices.empty(), "empty batch");
    const std::int64_t c = cfg_.channels;
    const std::int64_t s = cfg_.size;
    Tensor batch(Shape({static_cast<std::int64_t>(indices.size()), c, s, s}));
    const std::int64_t chw = c * s * s;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const auto &img = set[static_cast<std::size_t>(indices[i])].image;
        std::copy(img.data(), img.data() + chw,
                  batch.data() + static_cast<std::int64_t>(i) * chw);
    }
    return batch;
}

std::vector<int>
ClassificationDataset::batchLabels(const std::vector<Sample> &set,
                                   const std::vector<int> &indices) const
{
    std::vector<int> out;
    out.reserve(indices.size());
    for (int idx : indices)
        out.push_back(set[static_cast<std::size_t>(idx)].label);
    return out;
}

// --- Segmentation ---------------------------------------------------------

SegmentationDataset::SegmentationDataset(const SegmentationConfig &cfg)
    : cfg_(cfg)
{
    Rng rng(cfg_.seed);
    textures.reserve(static_cast<std::size_t>(cfg_.classes));
    for (int c = 0; c < cfg_.classes; ++c)
        textures.push_back(smoothField(rng, cfg_.channels, cfg_.size));

    train_.reserve(static_cast<std::size_t>(cfg_.train_count));
    for (int i = 0; i < cfg_.train_count; ++i)
        train_.push_back(makeSample(rng));
    test_.reserve(static_cast<std::size_t>(cfg_.test_count));
    for (int i = 0; i < cfg_.test_count; ++i)
        test_.push_back(makeSample(rng));
}

SegSample
SegmentationDataset::makeSample(Rng &rng) const
{
    const std::int64_t s = cfg_.size;
    const std::int64_t c = cfg_.channels;
    SegSample smp;
    smp.image = Tensor(Shape({c, s, s}));
    smp.labels.assign(static_cast<std::size_t>(s * s), 0);

    // Background noise on top of the class-0 texture at low amplitude.
    for (std::int64_t i = 0; i < smp.image.numel(); ++i)
        smp.image[i] = 0.3f * textures[0][i] + rng.normal(0.0f, cfg_.noise);

    const int objects = static_cast<int>(rng.intIn(1, 2));
    for (int o = 0; o < objects; ++o) {
        const int cls = static_cast<int>(rng.intIn(1, cfg_.classes - 1));
        const std::int64_t w = rng.intIn(4, s / 2);
        const std::int64_t h = rng.intIn(4, s / 2);
        const std::int64_t x0 = rng.intIn(0, s - w);
        const std::int64_t y0 = rng.intIn(0, s - h);
        const auto &tex = textures[static_cast<std::size_t>(cls)];
        for (std::int64_t y = y0; y < y0 + h; ++y) {
            for (std::int64_t x = x0; x < x0 + w; ++x) {
                for (std::int64_t ch = 0; ch < c; ++ch) {
                    smp.image.data()[(ch * s + y) * s + x] =
                        tex.data()[(ch * s + y) * s + x]
                        + rng.normal(0.0f, cfg_.noise * 0.5f);
                }
                smp.labels[static_cast<std::size_t>(y * s + x)] = cls;
            }
        }
    }
    return smp;
}

Tensor
SegmentationDataset::batchImages(const std::vector<SegSample> &set,
                                 const std::vector<int> &indices) const
{
    fatalIf(indices.empty(), "empty batch");
    const std::int64_t c = cfg_.channels;
    const std::int64_t s = cfg_.size;
    Tensor batch(Shape({static_cast<std::int64_t>(indices.size()), c, s, s}));
    const std::int64_t chw = c * s * s;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const auto &img = set[static_cast<std::size_t>(indices[i])].image;
        std::copy(img.data(), img.data() + chw,
                  batch.data() + static_cast<std::int64_t>(i) * chw);
    }
    return batch;
}

std::vector<int>
SegmentationDataset::batchLabels(const std::vector<SegSample> &set,
                                 const std::vector<int> &indices) const
{
    std::vector<int> out;
    const std::size_t hw = static_cast<std::size_t>(cfg_.size * cfg_.size);
    out.reserve(indices.size() * hw);
    for (int idx : indices) {
        const auto &l = set[static_cast<std::size_t>(idx)].labels;
        out.insert(out.end(), l.begin(), l.end());
    }
    return out;
}

// --- Detection proxy ------------------------------------------------------

float
boxIou(const Box &a, const Box &b)
{
    const float ix0 = std::max(a.x0, b.x0);
    const float iy0 = std::max(a.y0, b.y0);
    const float ix1 = std::min(a.x1, b.x1);
    const float iy1 = std::min(a.y1, b.y1);
    const float inter = std::max(0.0f, ix1 - ix0) * std::max(0.0f, iy1 - iy0);
    const float uni = a.area() + b.area() - inter;
    return uni > 0.0f ? inter / uni : 0.0f;
}

DetectionDataset::DetectionDataset(const DetectionConfig &cfg) : cfg_(cfg)
{
    Rng rng(cfg_.seed);
    textures.reserve(static_cast<std::size_t>(cfg_.classes));
    for (int c = 0; c < cfg_.classes; ++c)
        textures.push_back(smoothField(rng, cfg_.channels, cfg_.size));

    train_.reserve(static_cast<std::size_t>(cfg_.train_count));
    for (int i = 0; i < cfg_.train_count; ++i)
        train_.push_back(makeSample(rng));
    test_.reserve(static_cast<std::size_t>(cfg_.test_count));
    for (int i = 0; i < cfg_.test_count; ++i)
        test_.push_back(makeSample(rng));
}

DetSample
DetectionDataset::makeSample(Rng &rng) const
{
    const std::int64_t s = cfg_.size;
    const std::int64_t c = cfg_.channels;
    DetSample smp;
    smp.image = Tensor(Shape({c, s, s}));
    smp.mask.assign(static_cast<std::size_t>(s * s), 0);
    smp.label = static_cast<int>(rng.intIn(0, cfg_.classes - 1));

    for (std::int64_t i = 0; i < smp.image.numel(); ++i)
        smp.image[i] = rng.normal(0.0f, cfg_.noise);

    const std::int64_t w = rng.intIn(s / 4, s / 2);
    const std::int64_t h = rng.intIn(s / 4, s / 2);
    const std::int64_t x0 = rng.intIn(0, s - w);
    const std::int64_t y0 = rng.intIn(0, s - h);
    smp.box = Box{static_cast<float>(x0), static_cast<float>(y0),
                  static_cast<float>(x0 + w), static_cast<float>(y0 + h)};

    const auto &tex = textures[static_cast<std::size_t>(smp.label)];
    for (std::int64_t y = y0; y < y0 + h; ++y) {
        for (std::int64_t x = x0; x < x0 + w; ++x) {
            for (std::int64_t ch = 0; ch < c; ++ch) {
                smp.image.data()[(ch * s + y) * s + x] =
                    tex.data()[(ch * s + y) * s + x]
                    + rng.normal(0.0f, cfg_.noise * 0.5f);
            }
            smp.mask[static_cast<std::size_t>(y * s + x)] = 1;
        }
    }
    return smp;
}

Tensor
DetectionDataset::batchImages(const std::vector<DetSample> &set,
                              const std::vector<int> &indices) const
{
    fatalIf(indices.empty(), "empty batch");
    const std::int64_t c = cfg_.channels;
    const std::int64_t s = cfg_.size;
    Tensor batch(Shape({static_cast<std::int64_t>(indices.size()), c, s, s}));
    const std::int64_t chw = c * s * s;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const auto &img = set[static_cast<std::size_t>(indices[i])].image;
        std::copy(img.data(), img.data() + chw,
                  batch.data() + static_cast<std::int64_t>(i) * chw);
    }
    return batch;
}

} // namespace mvq::nn
