#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace mvq::nn {

BatchNorm2d::BatchNorm2d(std::string name, std::int64_t chans,
                         float momentum_val, float epsilon)
    : name_(std::move(name)),
      channels(chans),
      momentum(momentum_val),
      eps(epsilon),
      gamma_(name_ + ".gamma", Tensor(Shape({chans}), 1.0f)),
      beta_(name_ + ".beta", Tensor(Shape({chans}))),
      runningMean(Shape({chans})),
      runningVar(Shape({chans}), 1.0f)
{
}

Tensor
BatchNorm2d::forward(const Tensor &x, bool train)
{
    fatalIf(x.rank() != 4 || x.dim(1) != channels,
            name_, ": bad input ", x.shape().str());

    const std::int64_t n = x.dim(0);
    const std::int64_t h = x.dim(2);
    const std::int64_t w = x.dim(3);
    const std::int64_t per_chan = n * h * w;

    Tensor out(x.shape());
    if (train) {
        cachedXhat = Tensor(x.shape());
        cachedInvStd.assign(static_cast<std::size_t>(channels), 0.0f);
    }

    for (std::int64_t c = 0; c < channels; ++c) {
        float m, v;
        if (train) {
            double s = 0.0;
            for (std::int64_t b = 0; b < n; ++b)
                for (std::int64_t y = 0; y < h; ++y)
                    for (std::int64_t xx = 0; xx < w; ++xx)
                        s += x.at(b, c, y, xx);
            m = static_cast<float>(s / static_cast<double>(per_chan));
            double sv = 0.0;
            for (std::int64_t b = 0; b < n; ++b) {
                for (std::int64_t y = 0; y < h; ++y) {
                    for (std::int64_t xx = 0; xx < w; ++xx) {
                        const double d = x.at(b, c, y, xx) - m;
                        sv += d * d;
                    }
                }
            }
            v = static_cast<float>(sv / static_cast<double>(per_chan));
            runningMean[c] = (1.0f - momentum) * runningMean[c] + momentum * m;
            runningVar[c] = (1.0f - momentum) * runningVar[c] + momentum * v;
        } else {
            m = runningMean[c];
            v = runningVar[c];
        }

        const float inv_std = 1.0f / std::sqrt(v + eps);
        const float g = gamma_.value[c];
        const float b0 = beta_.value[c];
        for (std::int64_t b = 0; b < n; ++b) {
            for (std::int64_t y = 0; y < h; ++y) {
                for (std::int64_t xx = 0; xx < w; ++xx) {
                    const float xh = (x.at(b, c, y, xx) - m) * inv_std;
                    out.at(b, c, y, xx) = g * xh + b0;
                    if (train)
                        cachedXhat.at(b, c, y, xx) = xh;
                }
            }
        }
        if (train)
            cachedInvStd[static_cast<std::size_t>(c)] = inv_std;
    }
    return out;
}

Tensor
BatchNorm2d::backward(const Tensor &grad_out)
{
    fatalIf(cachedXhat.numel() == 0, name_, ": backward without forward");
    const Tensor &xhat = cachedXhat;
    const std::int64_t n = xhat.dim(0);
    const std::int64_t h = xhat.dim(2);
    const std::int64_t w = xhat.dim(3);
    const double count = static_cast<double>(n * h * w);

    Tensor grad_in(xhat.shape());

    for (std::int64_t c = 0; c < channels; ++c) {
        double sum_g = 0.0;
        double sum_gx = 0.0;
        for (std::int64_t b = 0; b < n; ++b) {
            for (std::int64_t y = 0; y < h; ++y) {
                for (std::int64_t xx = 0; xx < w; ++xx) {
                    const float g = grad_out.at(b, c, y, xx);
                    sum_g += g;
                    sum_gx += g * xhat.at(b, c, y, xx);
                }
            }
        }
        gamma_.grad[c] += static_cast<float>(sum_gx);
        beta_.grad[c] += static_cast<float>(sum_g);

        const float gam = gamma_.value[c];
        const float inv_std = cachedInvStd[static_cast<std::size_t>(c)];
        const float k1 = static_cast<float>(sum_g / count);
        const float k2 = static_cast<float>(sum_gx / count);
        for (std::int64_t b = 0; b < n; ++b) {
            for (std::int64_t y = 0; y < h; ++y) {
                for (std::int64_t xx = 0; xx < w; ++xx) {
                    const float g = grad_out.at(b, c, y, xx);
                    const float xh = xhat.at(b, c, y, xx);
                    grad_in.at(b, c, y, xx) =
                        gam * inv_std * (g - k1 - xh * k2);
                }
            }
        }
    }
    return grad_in;
}

std::vector<Parameter *>
BatchNorm2d::parameters()
{
    return {&gamma_, &beta_};
}

} // namespace mvq::nn
