/**
 * @file
 * Nearest-neighbour upsampling (used by the segmentation head).
 */

#ifndef MVQ_NN_UPSAMPLE_HPP
#define MVQ_NN_UPSAMPLE_HPP

#include "nn/layer.hpp"

namespace mvq::nn {

/** Nearest-neighbour spatial upsampling by an integer factor. */
class UpsampleNearest : public Layer
{
  public:
    UpsampleNearest(std::string name, std::int64_t scale)
        : name_(std::move(name)), factor(scale)
    {
    }

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return name_; }

  private:
    std::string name_;
    std::int64_t factor;
    Shape cachedInShape;
};

} // namespace mvq::nn

#endif // MVQ_NN_UPSAMPLE_HPP
