/**
 * @file
 * Layer interface for the in-repo neural network library. Each layer owns
 * its parameters and caches whatever it needs in forward() to compute exact
 * gradients in backward().
 */

#ifndef MVQ_NN_LAYER_HPP
#define MVQ_NN_LAYER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace mvq::nn {

/** A named, learnable tensor with its gradient accumulator. */
struct Parameter
{
    std::string name;
    Tensor value;
    Tensor grad;

    Parameter() = default;

    Parameter(std::string n, Tensor v)
        : name(std::move(n)), value(std::move(v)), grad(value.shape())
    {
    }
};

/**
 * Base class for all layers. The contract is strict single-use per step:
 * forward() must be called before backward(), and backward() consumes the
 * caches left by the most recent forward().
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Run the layer.
     *
     * @param x     Input activation (NCHW or [N, features]).
     * @param train True during training (enables BN batch statistics and
     *              gradient caches).
     */
    virtual Tensor forward(const Tensor &x, bool train) = 0;

    /**
     * Back-propagate through the most recent forward().
     *
     * @param grad_out Gradient of the loss w.r.t. this layer's output.
     * @return Gradient of the loss w.r.t. this layer's input.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Learnable parameters (possibly empty). */
    virtual std::vector<Parameter *> parameters() { return {}; }

    /** Nested layers, for recursive traversal (possibly empty). */
    virtual std::vector<Layer *> children() { return {}; }

    /** Stable identifier used in reports and compression manifests. */
    virtual std::string name() const = 0;

    /**
     * Multiply-accumulate operations for one forward pass with the most
     * recently seen input shape (0 for parameterless layers). The paper's
     * "FLOPs" counts one MAC as one FLOP (torchvision convention).
     */
    virtual std::int64_t flops() const { return 0; }

    /** Zero all parameter gradients (recursively). */
    void zeroGrad();

    /** Collect parameters recursively, depth-first. */
    std::vector<Parameter *> allParameters();

    /** Collect all layers recursively (including this), depth-first. */
    std::vector<Layer *> allLayers();
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace mvq::nn

#endif // MVQ_NN_LAYER_HPP
