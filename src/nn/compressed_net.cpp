#include "nn/compressed_net.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "core/io/model_artifact.hpp"

namespace mvq::nn {

CompressedNet::CompressedNet(const core::io::ModelArtifact &artifact,
                             const std::vector<ConvGeomSpec> &geom)
{
    const std::int64_t n = artifact.layerCount();
    fatalIf(n == 0, "CompressedNet: artifact ", artifact.path(),
            " has no layers");
    fatalIf(!geom.empty() && static_cast<std::int64_t>(geom.size()) != n,
            "CompressedNet: ", geom.size(), " geometry entries for ", n,
            " layers (pass one per layer, or none for stride 1 / pad 1)");

    layers_.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
        const ConvGeomSpec g =
            geom.empty() ? ConvGeomSpec{} : geom[static_cast<std::size_t>(i)];
        // packedOperands(i) serves the artifact's baked group count (or 1
        // when nothing is baked) from its shared per-(layer, groups)
        // cache — this is the zero-copy serving path for MVQI images.
        layers_.emplace_back(artifact.layerName(i), artifact.layerShape(i),
                             artifact.packedOperands(i), g.stride, g.pad);
    }
    const std::int64_t groups0 = std::max<std::int64_t>(
        artifact.bakedGroups(0), 1);
    in_channels_ = artifact.layerShape(0).dim(1) * groups0;
}

Tensor
CompressedNet::forward(const Tensor &x) const
{
    // Diagnose shape mismatches here, by name, instead of letting the
    // first conv panic deep inside the im2col indexing — a serving
    // stack feeds this from untrusted requests and wants FatalError.
    fatalIf(x.rank() != 4, "CompressedNet::forward: input must be rank-4 "
            "[B, C, H, W], got ", x.shape().str());
    fatalIf(x.dim(1) != in_channels_,
            "CompressedNet::forward: input has ", x.dim(1),
            " channels but layer '", layers_.front().name(), "' expects ",
            in_channels_, " (input shape ", x.shape().str(), ")");
    Tensor y = layers_.front().forward(x);
    for (std::size_t i = 1; i < layers_.size(); ++i)
        y = layers_[i].forward(y);
    return y;
}

} // namespace mvq::nn
