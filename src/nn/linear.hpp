/**
 * @file
 * Fully connected layer: y = x W^T + b with x of shape [N, in].
 */

#ifndef MVQ_NN_LINEAR_HPP
#define MVQ_NN_LINEAR_HPP

#include "nn/layer.hpp"

namespace mvq::nn {

/** Dense layer over flattened features. */
class Linear : public Layer
{
  public:
    Linear(std::string name, std::int64_t in_features,
           std::int64_t out_features, Rng &rng, bool bias = true);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::vector<Parameter *> parameters() override;
    std::string name() const override { return name_; }
    std::int64_t flops() const override { return flops_; }

    /** Weight matrix, shape [out, in]. */
    Parameter &weight() { return weight_; }

  private:
    std::string name_;
    std::int64_t inFeatures;
    std::int64_t outFeatures;
    bool hasBias;
    Parameter weight_;
    Parameter bias_;
    Tensor cachedInput;
    std::int64_t flops_ = 0;
};

} // namespace mvq::nn

#endif // MVQ_NN_LINEAR_HPP
