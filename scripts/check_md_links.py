#!/usr/bin/env python3
"""Fail on broken relative links in the repo's markdown files.

Scans every tracked *.md file for inline links/images `[text](target)`
and reference definitions `[label]: target`, skips absolute URLs
(http/https/mailto) and pure in-page anchors (#...), and checks that the
remaining relative targets exist on disk (resolved against the linking
file's directory; a trailing #fragment is ignored for existence). Run
from anywhere inside the repo; CI runs it as the docs job.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

# Inline [text](target) — target ends at the first unescaped ')' or a
# space introducing a title: [x](path "title"). Images are the same
# syntax with a leading '!'.
INLINE_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definition: [label]: target
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        check=True, capture_output=True, text=True,
    )
    return Path(out.stdout.strip())


def markdown_files(root: Path) -> list[Path]:
    # --others --exclude-standard also picks up not-yet-committed docs so
    # the check catches broken links before they land.
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"],
        check=True, capture_output=True, text=True, cwd=root,
    )
    return [root / line for line in out.stdout.splitlines() if line]


def strip_code(text: str) -> str:
    """Drop fenced blocks (line-based, so a ``` mentioned mid-prose
    cannot mispair with a real fence) and inline `code` spans — both
    routinely contain [x](y)-looking text that is not a link."""
    kept = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append(line)
    return re.sub(r"`[^`\n]*`", "", "\n".join(kept))


def check_file(md: Path, root: Path) -> list[str]:
    text = strip_code(md.read_text(encoding="utf-8"))
    errors = []
    targets = INLINE_RE.findall(text) + REFDEF_RE.findall(text)
    for target in targets:
        if target.startswith(SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        if not resolved.exists():
            rel = md.relative_to(root)
            errors.append(f"{rel}: broken relative link -> {target}")
    return errors


def main() -> int:
    root = repo_root()
    files = markdown_files(root)
    errors = []
    for md in files:
        errors.extend(check_file(md, root))
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) in {len(files)} markdown "
              "file(s)")
        return 1
    print(f"ok: {len(files)} markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
