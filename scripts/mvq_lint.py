#!/usr/bin/env python3
"""Repo-invariant linter: enforce MVQ's cross-file structural rules.

Checks that cannot be expressed per-translation-unit (so neither the
compiler nor clang-tidy sees them):

  1. intrinsics  — arch headers (<immintrin.h>, <arm_neon.h>) and raw
     intrinsic tokens (_mm256_*, vld1q_*, __m256, float32x4_t, ...) may
     appear only in the per-ISA TUs src/common/simd_avx2.cpp and
     src/common/simd_neon.cpp. Everything else must go through the
     dispatch table in simd_dispatch.hpp.
  2. env-knobs   — every quoted "MVQ_*" literal must be registered in
     src/common/env.cpp's kKnobs table, and every registered knob must
     have a row in README.md's knob table.
  3. dispatch    — every function-pointer slot declared in the Kernels
     struct (simd_dispatch.hpp) must be populated in all three ISA
     tables (kScalarKernels, kAvx2Kernels, kNeonKernels); nullptr slots
     are a crash waiting for the first caller.
  4. header-guard — src/**/*.hpp include guards must be
     MVQ_<PATH>_HPP (path relative to src/, uppercased, / and . -> _).
  5. banned      — raw std::getenv/setenv (outside src/common/env.cpp),
     rand/srand (outside src/common/random.*), printf in src/ (use
     common/logging; bench mains and examples may print).

Run from anywhere inside the repo (ctest runs it as `mvq_lint`); use
--selftest to run the checks against tests/lint_fixtures/ and assert
each known-bad snippet is flagged (ctest `lint_selftest`).
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

SIMD_TUS = {"src/common/simd_avx2.cpp", "src/common/simd_neon.cpp"}
ENV_TU = "src/common/env.cpp"
RANDOM_PREFIX = "src/common/random"
DISPATCH_HPP = "src/common/simd_dispatch.hpp"
DISPATCH_TABLES = {
    "src/common/simd_dispatch.cpp": "kScalarKernels",
    "src/common/simd_avx2.cpp": "kAvx2Kernels",
    "src/common/simd_neon.cpp": "kNeonKernels",
}
FIXTURE_DIR = "tests/lint_fixtures"
CODE_SUFFIXES = (".cpp", ".hpp")
CODE_DIRS = ("src/", "tests/", "bench/", "examples/")

INTRINSIC_RE = re.compile(
    r"immintrin\.h|arm_neon\.h|x86intrin\.h"
    r"|\b_mm\d*_\w+|\b__m(?:128|256|512)[di]?\b"
    r"|\bv(?:ld1q?|st1q?|fmaq|fmsq|addq|subq|mulq|dupq|movq|maxvq|getq)_\w+"
    r"|\bfloat32x\d+(?:x\d+)?_t\b|\bint32x\d+_t\b")
KNOB_LITERAL_RE = re.compile(r'"(MVQ_[A-Z0-9_]+)"')
KNOB_TABLE_ENTRY_RE = re.compile(r'^\s*\{"(MVQ_[A-Z0-9_]+)",', re.MULTILINE)
README_ROW_RE = re.compile(r"^\|\s*`(MVQ_[A-Z0-9_]+)", re.MULTILINE)
SLOT_RE = re.compile(r"\(\*(\w+)\)\s*\(")
GUARD_IFNDEF_RE = re.compile(r"^\s*#ifndef\s+(\w+)", re.MULTILINE)
GUARD_DEFINE_RE = re.compile(r"^\s*#define\s+(\w+)", re.MULTILINE)
GETENV_RE = re.compile(r"\b(?:std::)?(?:getenv|setenv|unsetenv|putenv)\s*\(")
RAND_RE = re.compile(r"\b(?:std::)?s?rand\s*\(")
PRINTF_RE = re.compile(r"\bprintf\s*\(")


def repo_root() -> Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        check=True, capture_output=True, text=True,
    )
    return Path(out.stdout.strip())


def tracked_files(root: Path) -> list[str]:
    # --others --exclude-standard also lints files not yet committed.
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard"],
        check=True, capture_output=True, text=True, cwd=root,
    )
    return [line for line in out.stdout.splitlines() if line]


def strip_comments(text: str) -> str:
    """Remove //-line and /* */ block comments, preserving string
    literals (the env-knob check needs them) and line numbers (block
    comments keep their newlines so error lines stay accurate)."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i:i + 2])
                    i += 2
                    continue
                out.append(text[i])
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            out.append("\n" * text.count("\n", i, end))
            i = end
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# ------------------------------------------------------------- checks
# Each check takes (repo-relative path, comment-stripped text) and
# returns a list of "path:line: message" strings, so the self-test can
# replay them against fixture snippets under pretend paths.

def check_intrinsics(path: str, text: str) -> list[str]:
    if path in SIMD_TUS:
        return []
    errors = []
    for m in INTRINSIC_RE.finditer(text):
        errors.append(
            f"{path}:{line_of(text, m.start())}: intrinsic or arch header "
            f"'{m.group(0)}' outside the per-ISA TUs "
            f"({', '.join(sorted(SIMD_TUS))}); go through the dispatch "
            "table in simd_dispatch.hpp")
    return errors


def check_knob_literals(path: str, text: str,
                        registered: set[str]) -> list[str]:
    errors = []
    for m in KNOB_LITERAL_RE.finditer(text):
        if m.group(1) not in registered:
            errors.append(
                f"{path}:{line_of(text, m.start())}: env knob "
                f"'{m.group(1)}' is not registered in {ENV_TU} (kKnobs); "
                "every MVQ_* variable must be declared there")
    return errors


def check_dispatch_table(path: str, text: str, table: str,
                         slots: list[str]) -> list[str]:
    m = re.search(r"constexpr\s+Kernels\s+" + table
                  + r"\s*=\s*\{(.*?)\};", text, re.DOTALL)
    if not m:
        return [f"{path}: dispatch table '{table}' not found"]
    body = m.group(1)
    errors = []
    if "nullptr" in body:
        errors.append(
            f"{path}:{line_of(text, m.start())}: dispatch table '{table}' "
            "contains nullptr slots; every Kernels entry must be populated")
    entries = re.findall(r"&\w+", body)
    if len(entries) != len(slots):
        errors.append(
            f"{path}:{line_of(text, m.start())}: dispatch table '{table}' "
            f"populates {len(entries)} of {len(slots)} function-pointer "
            f"slots declared in {DISPATCH_HPP} ({', '.join(slots)})")
    return errors


def expected_guard(path: str) -> str:
    rel = path[len("src/"):] if path.startswith("src/") else path
    return "MVQ_" + re.sub(r"[^A-Za-z0-9]", "_", rel).upper()


def check_header_guard(path: str, text: str) -> list[str]:
    want = expected_guard(path)
    ifndef = GUARD_IFNDEF_RE.search(text)
    define = GUARD_DEFINE_RE.search(text)
    if not ifndef or not define or ifndef.group(1) != define.group(1):
        return [f"{path}:1: missing or mismatched include guard "
                f"(want #ifndef/#define {want})"]
    if ifndef.group(1) != want:
        return [f"{path}:{line_of(text, ifndef.start())}: include guard "
                f"'{ifndef.group(1)}' does not match path (want {want})"]
    return []


def check_banned(path: str, text: str) -> list[str]:
    errors = []
    if path != ENV_TU:
        for m in GETENV_RE.finditer(text):
            errors.append(
                f"{path}:{line_of(text, m.start())}: raw environment "
                "access; use the read-once registry in common/env.hpp "
                "(mvq::env::flag/int_/str)")
    if not path.startswith(RANDOM_PREFIX):
        for m in RAND_RE.finditer(text):
            errors.append(
                f"{path}:{line_of(text, m.start())}: C rand()/srand(); "
                "use mvq::Rng (common/random.hpp) for reproducibility")
    if path.startswith("src/"):
        for m in PRINTF_RE.finditer(text):
            errors.append(
                f"{path}:{line_of(text, m.start())}: printf in the "
                "library; use common/logging.hpp (info/warn/fatal)")
    return errors


# --------------------------------------------------------- repo driver

def code_files(files: list[str]) -> list[str]:
    return [f for f in files
            if f.endswith(CODE_SUFFIXES)
            and f.startswith(CODE_DIRS)
            and not f.startswith(FIXTURE_DIR)]


def read_rel(root: Path, rel: str) -> str:
    return (root / rel).read_text(encoding="utf-8")


def registered_knobs(root: Path) -> set[str]:
    return set(KNOB_TABLE_ENTRY_RE.findall(read_rel(root, ENV_TU)))


def dispatch_slots(root: Path) -> list[str]:
    text = strip_comments(read_rel(root, DISPATCH_HPP))
    m = re.search(r"struct\s+Kernels\s*\{(.*?)\n\};", text, re.DOTALL)
    body = m.group(1) if m else ""
    return SLOT_RE.findall(body)


def lint_repo(root: Path) -> list[str]:
    files = tracked_files(root)
    errors: list[str] = []

    registered = registered_knobs(root)
    slots = dispatch_slots(root)
    if len(slots) < 2:
        errors.append(f"{DISPATCH_HPP}: could not parse Kernels "
                      "function-pointer slots (linter regex drifted?)")

    documented = set(README_ROW_RE.findall(read_rel(root, "README.md")))
    for knob in sorted(registered - documented):
        errors.append(f"README.md: registered env knob '{knob}' has no "
                      "row in the environment-variable table")

    for rel in code_files(files):
        text = strip_comments(read_rel(root, rel))
        errors.extend(check_intrinsics(rel, text))
        errors.extend(check_knob_literals(rel, text, registered))
        if rel.endswith(".hpp") and rel.startswith("src/"):
            errors.extend(check_header_guard(rel, text))
        errors.extend(check_banned(rel, text))

    for rel, table in DISPATCH_TABLES.items():
        text = strip_comments(read_rel(root, rel))
        errors.extend(check_dispatch_table(rel, text, table, slots))

    return errors


# ------------------------------------------------------------ selftest

# fixture file -> (pretend repo path, check runner). Each fixture is a
# known-bad snippet; the self-test fails unless its check flags it.
def selftest(root: Path) -> int:
    registered = registered_knobs(root)
    slots = dispatch_slots(root)
    cases = {
        "bad_intrinsics.cpp": (
            "src/tensor/bad_intrinsics.cpp",
            lambda p, t: check_intrinsics(p, t)),
        "bad_knob.cpp": (
            "src/core/bad_knob.cpp",
            lambda p, t: check_knob_literals(p, t, registered)),
        "bad_dispatch.cpp": (
            "src/common/bad_dispatch.cpp",
            lambda p, t: check_dispatch_table(p, t, "kBadKernels", slots)),
        "bad_guard.hpp": (
            "src/nn/bad_guard.hpp",
            lambda p, t: check_header_guard(p, t)),
        "bad_getenv.cpp": (
            "src/common/bad_getenv.cpp",
            lambda p, t: check_banned(p, t)),
        "bad_printf_rand.cpp": (
            "src/tensor/bad_printf_rand.cpp",
            lambda p, t: check_banned(p, t)),
    }
    failures = []
    fixture_root = root / FIXTURE_DIR
    for name, (pretend, run) in sorted(cases.items()):
        path = fixture_root / name
        if not path.exists():
            failures.append(f"{FIXTURE_DIR}/{name}: fixture missing")
            continue
        text = strip_comments(path.read_text(encoding="utf-8"))
        found = run(pretend, text)
        if not found:
            failures.append(f"{FIXTURE_DIR}/{name}: check reported no "
                            "errors for a known-bad snippet")
        else:
            print(f"ok: {name} -> {len(found)} error(s), e.g. {found[0]}")

    # A clean snippet must stay clean (guards against over-broad regexes).
    good = ('#ifndef MVQ_TENSOR_GOOD_HPP\n#define MVQ_TENSOR_GOOD_HPP\n'
            'namespace mvq { inline int mmHelper() { return 0; } }\n'
            '#endif // MVQ_TENSOR_GOOD_HPP\n')
    noise = (check_intrinsics("src/tensor/good.hpp", good)
             + check_banned("src/tensor/good.hpp", good)
             + check_header_guard("src/tensor/good.hpp", good))
    if noise:
        failures.append("clean snippet falsely flagged: " + noise[0])

    if failures:
        print("\n".join(failures))
        print(f"\nselftest: {len(failures)} failure(s)")
        return 1
    print(f"selftest: all {len(cases)} fixtures flagged, clean snippet "
          "clean")
    return 0


def main() -> int:
    root = repo_root()
    if "--selftest" in sys.argv[1:]:
        return selftest(root)
    errors = lint_repo(root)
    if errors:
        print("\n".join(errors))
        print(f"\nmvq-lint: {len(errors)} violation(s)")
        return 1
    files = code_files(tracked_files(root))
    print(f"mvq-lint: ok ({len(files)} files, "
          f"{len(registered_knobs(root))} knobs, "
          f"{len(dispatch_slots(root))} dispatch slots)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
